// Package core is the paper's contribution layer: given a deployed
// component system it (a) statically verifies schedulability on every ECU
// and bus, contract compatibility, and end-to-end latency constraints —
// the "prior to implementation system configuration checks" §2 calls for —
// and (b) checks composability dynamically, by comparing component timing
// before and after integration or extension (§4's "stability of prior
// services").
//
// Verification is embarrassingly parallel over ECUs, buses and constraint
// chains, so Verify fans the per-item analyses out on a bounded worker
// pool and merges the reports in deterministic order; a Pipeline carries
// the worker count plus memoized analysis caches so that design-space
// exploration, which re-verifies near-identical candidate mappings, pays
// for each distinct task set and bus frame set only once.
package core

import (
	"fmt"
	"sort"
	"time"

	"autorte/internal/can"
	"autorte/internal/contract"
	"autorte/internal/e2e"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/par"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/sim"
	"autorte/internal/taskset"
	"autorte/internal/vfb"
)

// ECUReport is one ECU's schedulability verdict.
type ECUReport struct {
	Name        string
	Utilization float64
	Results     []sched.Result
	Schedulable bool
}

// BusReport is one bus's schedulability verdict.
type BusReport struct {
	Name        string
	Kind        model.BusKind
	Load        float64
	Schedulable bool
	Detail      string
}

// ChainReport is one latency constraint's verdict.
type ChainReport struct {
	Name   string
	Bound  sim.Duration
	Budget sim.Duration
	OK     bool
	Err    string
}

// Report aggregates static verification.
type Report struct {
	ECUs      []ECUReport
	Buses     []BusReport
	Chains    []ChainReport
	Contracts *contract.Report
	Warnings  []string
}

// OK reports overall static admissibility.
func (r *Report) OK() bool {
	for _, e := range r.ECUs {
		if !e.Schedulable {
			return false
		}
	}
	for _, b := range r.Buses {
		if !b.Schedulable {
			return false
		}
	}
	for _, c := range r.Chains {
		if !c.OK {
			return false
		}
	}
	return r.Contracts == nil || r.Contracts.OK()
}

// Pipeline is a reusable verification context: a bounded worker pool size
// plus memoized analysis caches shared across Verify calls. The zero
// value is valid (GOMAXPROCS workers, no caching); NewPipeline enables
// all caches. A single Pipeline is safe for concurrent use and is meant
// to be shared across the candidate evaluations of a DSE run, where most
// ECUs' task sets survive from one mapping to the next.
type Pipeline struct {
	// Workers bounds the fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// RTA memoizes per-ECU and per-chain-stage response-time analysis.
	RTA *sched.Cache
	// CAN memoizes CAN bus analysis.
	CAN *can.Cache
	// FlexRay memoizes static-segment schedule synthesis.
	FlexRay *flexray.SynthCache
	// Tracer records wall-clock spans around every Verify stage and
	// per-item job when non-nil (export with Tracer.WriteChrome or
	// Tracer.WriteTree). Nil — the default — traces nothing.
	Tracer *obs.Tracer

	// reg receives stage-duration histograms once Observe attaches it.
	reg *obs.Registry
}

// Observe attaches a metrics registry to the pipeline: stage-duration
// histograms (pipeline_stage_duration_ns by stage), the hit/miss/size
// series of all three analysis caches, and the shared worker-pool
// occupancy metrics.
func (p *Pipeline) Observe(reg *obs.Registry) {
	p.reg = reg
	p.RTA.Observe(reg)
	p.CAN.Observe(reg)
	p.FlexRay.Observe(reg)
	par.Observe(reg)
}

// stage opens one timed pipeline stage: a tracer span (named by stage
// plus an optional per-item detail) and, when a registry is attached, a
// sample in the per-stage duration histogram. The returned func closes
// both. Cheap no-op when neither tracer nor registry is set.
func (p *Pipeline) stage(parent *obs.Span, stage, detail string) func() {
	if p.Tracer == nil && p.reg == nil {
		return func() {}
	}
	name := stage
	if detail != "" {
		name += " " + detail
	}
	sp := p.Tracer.StartChild(parent, name)
	t0 := time.Now() //autovet:allow walltime stage histogram times the host pipeline
	return func() {
		sp.End()
		if p.reg != nil {
			p.reg.Histogram("pipeline_stage_duration_ns",
				"Wall-clock duration of verification pipeline stages.",
				obs.Label{Key: "stage", Value: stage}).Observe(time.Since(t0).Nanoseconds()) //autovet:allow walltime stage histogram times the host pipeline
		}
	}
}

// NewPipeline returns a pipeline with all analysis caches enabled.
func NewPipeline(workers int) *Pipeline {
	return &Pipeline{
		Workers: workers,
		RTA:     sched.NewCache(),
		CAN:     can.NewCache(),
		FlexRay: flexray.NewSynthCache(),
	}
}

// Verify statically checks a deployed system with a default pipeline:
// model + VFB validity, fixed-priority schedulability per ECU (with the
// same priority assignment the RTE generates), bus schedulability per
// channel, contract compatibility, and every declared end-to-end latency
// constraint.
func Verify(sys *model.System, contracts map[string]*contract.Contract, opts rte.Options) (*Report, error) {
	return NewPipeline(0).Verify(sys, contracts, opts)
}

// Verify runs the full static check through the pipeline's worker pool
// and caches. The report is identical to a sequential run: every worker
// writes only its own pre-assigned slot and the slots are merged in the
// same order the sequential loops used.
func (p *Pipeline) Verify(sys *model.System, contracts map[string]*contract.Contract, opts rte.Options) (*Report, error) {
	root := p.Tracer.Start("verify")
	defer root.End()
	endSetup := p.stage(root, "verify/setup", "")
	if err := sys.Validate(); err != nil {
		endSetup()
		return nil, err
	}
	if err := vfb.CheckConnectivity(sys); err != nil {
		endSetup()
		return nil, err
	}
	routes, err := vfb.Resolve(sys)
	endSetup()
	if err != nil {
		return nil, err
	}
	rep := &Report{}

	endTasksets := p.stage(root, "verify/tasksets", "")
	taskSets, warnings := BuildTaskSets(sys)
	rep.Warnings = append(rep.Warnings, warnings...)
	var ecus []string
	for e := range taskSets {
		ecus = append(ecus, e)
	}
	sort.Strings(ecus)
	byBus := vfb.ByBus(routes)
	endTasksets()

	// One job per ECU, per routed bus, per constraint chain, plus one for
	// the contract check; each writes only its own slot. Job order mirrors
	// the sequential loops, so the lowest-index error is the sequential
	// error.
	ecuReports := make([]ECUReport, len(ecus))
	busReports := make([]BusReport, len(sys.Buses))
	busUsed := make([]bool, len(sys.Buses))
	chainReports := make([]ChainReport, len(sys.Constraints))
	var contractRep *contract.Report

	var jobs []func() error
	for i, ecu := range ecus {
		i, ecu := i, ecu
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/ecu", ecu)()
			tasks := taskSets[ecu]
			ok, results, err := p.RTA.Schedulable(tasks)
			if err != nil {
				return err
			}
			ecuReports[i] = ECUReport{
				Name: ecu, Utilization: sched.TotalUtilization(tasks),
				Results: results, Schedulable: ok,
			}
			return nil
		})
	}
	for i, b := range sys.Buses {
		busRoutes := byBus[b.Name]
		if len(busRoutes) == 0 {
			continue
		}
		i, b := i, b
		busUsed[i] = true
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/bus", b.Name)()
			br, err := p.verifyBus(sys, b, busRoutes, opts)
			if err != nil {
				return err
			}
			busReports[i] = br
			return nil
		})
	}
	if contracts != nil {
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/contracts", "")()
			crep, err := contract.CheckSystem(sys, contracts)
			if err != nil {
				return err
			}
			contractRep = crep
			return nil
		})
	}
	for i, lc := range sys.Constraints {
		i, lc := i, lc
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/chain", lc.Name)()
			cr := ChainReport{Name: lc.Name, Budget: lc.Budget}
			bound, err := p.chainBound(sys, lc, taskSets, byBus, opts)
			if err != nil {
				cr.Err = err.Error()
			} else {
				cr.Bound = bound
				cr.OK = bound <= lc.Budget
			}
			chainReports[i] = cr
			return nil
		})
	}
	if err := par.ForEach(p.Workers, len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}

	rep.ECUs = ecuReports
	for i := range busReports {
		if busUsed[i] {
			rep.Buses = append(rep.Buses, busReports[i])
		}
	}
	rep.Contracts = contractRep
	rep.Chains = chainReports
	return rep, nil
}

// verifyBus runs the per-channel schedulability analysis for one bus.
func (p *Pipeline) verifyBus(sys *model.System, b *model.Bus, busRoutes []vfb.Route, opts rte.Options) (BusReport, error) {
	br := BusReport{Name: b.Name, Kind: b.Kind, Schedulable: true}
	switch b.Kind {
	case model.BusCAN:
		msgs := canMessages(busRoutes, b.BitRate)
		cfg := can.Config{BitRate: b.BitRate}
		rs, err := p.CAN.Analyze(cfg, msgs)
		if err != nil {
			return br, err
		}
		br.Load = can.TotalUtilization(cfg, msgs)
		for _, r := range rs {
			if !r.Schedulable {
				br.Schedulable = false
				br.Detail = fmt.Sprintf("%s unschedulable (WCRT %v)", r.Message.Name, r.WCRT)
			}
		}
	case model.BusFlexRay:
		if _, err := p.flexraySchedule(defaultFlexRay(opts), busRoutes); err != nil {
			br.Schedulable = false
			br.Detail = err.Error()
		}
	case model.BusTTP:
		// TDMA capacity: each sender ECU gets one slot per round; a
		// signal's period must exceed the round length.
		round := opts.TTPSlotLength
		if round == 0 {
			round = sim.US(250)
		}
		nodes := 0
		for _, e := range sys.ECUs {
			for _, eb := range e.Buses {
				if eb == b.Name {
					nodes++
				}
			}
		}
		roundLen := sim.Duration(nodes) * round
		for _, r := range busRoutes {
			if r.Period > 0 && sim.Duration(r.Period) < roundLen {
				br.Schedulable = false
				br.Detail = fmt.Sprintf("%s period %v below TDMA round %v", r.SignalName, sim.Duration(r.Period), roundLen)
			}
		}
	}
	return br, nil
}

// BuildTaskSets derives the analyzable task set per ECU, using the same
// priority assignment the RTE generator applies (event-driven first, then
// rate-monotonic). Event-driven runnables inherit the period of their
// triggering producer; runnables whose rate cannot be derived are skipped
// with a warning. (Shared with the deployment search via package taskset.)
func BuildTaskSets(sys *model.System) (map[string][]sched.Task, []string) {
	return taskset.Build(sys)
}

// EffectivePeriod is a convenience wrapper over the model's shared rate
// derivation (see model.System.EffectivePeriod).
func EffectivePeriod(sys *model.System, comp *model.SWC, run *model.Runnable) sim.Duration {
	return sys.EffectivePeriod(comp, run)
}

// canMessages reconstructs the analyzable message set the RTE would put on
// a CAN bus for the given routes (same deterministic ID assignment).
func canMessages(routes []vfb.Route, bitRate int64) []*can.Message {
	sorted := append([]vfb.Route(nil), routes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].SignalName < sorted[j].SignalName })
	out := make([]*can.Message, 0, len(sorted))
	for i, r := range sorted {
		if r.Period <= 0 {
			continue // sporadic routes need explicit MINTs; skipped here
		}
		out = append(out, &can.Message{
			Name: r.SignalName, ID: uint32(0x100 + i),
			DLC: (r.Bits + 7) / 8, Period: sim.Duration(r.Period),
		})
	}
	return out
}

// chainBound composes the analytic end-to-end bound of a constraint chain
// from task RTA, bus analysis and sampling stages, with jitter propagation
// (package e2e). Stage analyses run through the pipeline caches.
func (p *Pipeline) chainBound(sys *model.System, lc model.LatencyConstraint,
	taskSets map[string][]sched.Task, byBus map[string][]vfb.Route, opts rte.Options) (sim.Duration, error) {
	var stages []e2e.Stage
	for i := 0; i+1 < len(lc.Chain); i++ {
		a, b := lc.Chain[i], lc.Chain[i+1]
		if a.SWC == b.SWC {
			// Internal hop: the runnable consuming a.Port and producing
			// b.Port.
			comp := sys.Component(a.SWC)
			run := findInternalRunnable(comp, a.Port, b.Port)
			if run == nil {
				return 0, fmt.Errorf("chain %s: no runnable in %s from %s to %s", lc.Name, a.SWC, a.Port, b.Port)
			}
			ecu := sys.Mapping[a.SWC]
			if run.Trigger.Kind == model.TimingEvent {
				// Periodic sampler: waits up to one period, then executes.
				stages = append(stages, &e2e.SamplingStage{
					Name: a.SWC + "." + run.Name, Period: run.Trigger.Period,
				})
			}
			stages = append(stages, &e2e.TaskStage{
				Name: a.SWC + "." + run.Name, Tasks: taskSets[ecu],
				Target: a.SWC + "." + run.Name,
				RTA:    p.RTA.ResponseTimes,
			})
			continue
		}
		// Communication hop a -> b.
		conn, err := findConnector(sys, a, b)
		if err != nil {
			return 0, err
		}
		if sys.Mapping[a.SWC] == sys.Mapping[b.SWC] {
			continue // local: delivered at job completion, already counted
		}
		// The resolved route carries the bus path, including a gateway
		// segment pair when the ECUs share no bus.
		var signal *vfb.Route
		for busName := range byBus {
			if s := findRouteSignal(byBus[busName], conn); s != nil {
				signal = s
				break
			}
		}
		if signal == nil {
			return 0, fmt.Errorf("chain %s: no route for connector %s.%s -> %s.%s", lc.Name, a.SWC, a.Port, b.SWC, b.Port)
		}
		segBuses := []string{signal.Bus}
		if signal.Via != "" {
			segBuses = append(segBuses, signal.Bus2)
		}
		for _, busName := range segBuses {
			if err := p.appendBusStage(&stages, sys, busName, signal, byBus[busName], opts); err != nil {
				return 0, fmt.Errorf("chain %s: %w", lc.Name, err)
			}
		}
	}
	// Prepend the source stage: the runnable writing chain[0].
	src := sys.Component(lc.Chain[0].SWC)
	for i := range src.Runnables {
		run := &src.Runnables[i]
		for _, w := range run.Writes {
			if w.Port == lc.Chain[0].Port {
				stages = append([]e2e.Stage{&e2e.TaskStage{
					Name: src.Name + "." + run.Name, Tasks: taskSets[sys.Mapping[src.Name]],
					Target: src.Name + "." + run.Name,
					RTA:    p.RTA.ResponseTimes,
				}}, stages...)
			}
		}
	}
	return e2e.ChainBound(stages)
}

// defaultFlexRay resolves the effective FlexRay configuration.
func defaultFlexRay(opts rte.Options) flexray.Config {
	if opts.FlexRayConfig.CycleLength() != 0 {
		return opts.FlexRayConfig
	}
	return flexray.Config{
		StaticSlots: 8, SlotLength: sim.US(100),
		Minislots: 40, MinislotLength: sim.US(5), NIT: sim.US(100),
	}
}

// flexraySchedule synthesizes the static schedule for a bus's periodic
// routes (through the pipeline's synthesis cache) and indexes it by signal
// name.
func (p *Pipeline) flexraySchedule(cfg flexray.Config, routes []vfb.Route) (map[string]flexray.Assignment, error) {
	var sigs []flexray.Signal
	for _, r := range routes {
		if r.Period > 0 {
			sigs = append(sigs, flexray.Signal{Name: r.SignalName, Period: sim.Duration(r.Period)})
		}
	}
	as, err := p.FlexRay.Synthesize(cfg, sigs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]flexray.Assignment, len(as))
	for _, a := range as {
		out[a.Signal.Name] = a
	}
	return out, nil
}

// appendBusStage adds the analytic stage for one bus segment of a route.
func (p *Pipeline) appendBusStage(stages *[]e2e.Stage, sys *model.System, busName string,
	signal *vfb.Route, routes []vfb.Route, opts rte.Options) error {
	bus := sys.BusByName(busName)
	if bus == nil {
		return fmt.Errorf("unknown bus %q", busName)
	}
	switch bus.Kind {
	case model.BusCAN:
		*stages = append(*stages, &e2e.CANStage{
			Name: busName, Cfg: can.Config{BitRate: bus.BitRate},
			Messages: canMessages(routes, bus.BitRate), Target: signal.SignalName,
			Analyze: p.CAN.Analyze,
		})
	case model.BusFlexRay:
		cfg := defaultFlexRay(opts)
		// The bound must reflect the actual synthesized slot position:
		// worst case is one full repetition of waiting plus the slot.
		as, err := p.flexraySchedule(cfg, routes)
		if err != nil {
			return err
		}
		a, ok := as[signal.SignalName]
		if !ok {
			return fmt.Errorf("signal %s not in static schedule of %s", signal.SignalName, busName)
		}
		*stages = append(*stages, &e2e.SamplingStage{
			Name:   busName,
			Period: sim.Duration(a.Repetition) * cfg.CycleLength(),
			// Delivery completes at the slot end within the cycle.
			Transfer: sim.Duration(a.SlotID) * cfg.SlotLength,
		})
	case model.BusTTP:
		slot := opts.TTPSlotLength
		if slot == 0 {
			slot = sim.US(250)
		}
		nodes := 0
		for _, e := range sys.ECUs {
			for _, eb := range e.Buses {
				if eb == busName {
					nodes++
				}
			}
		}
		*stages = append(*stages, &e2e.SamplingStage{
			Name: busName, Period: sim.Duration(nodes) * slot, Transfer: slot,
		})
	}
	return nil
}

func findInternalRunnable(comp *model.SWC, inPort, outPort string) *model.Runnable {
	for i := range comp.Runnables {
		run := &comp.Runnables[i]
		reads := run.Trigger.Port == inPort
		for _, rr := range run.Reads {
			if rr.Port == inPort {
				reads = true
			}
		}
		writes := false
		for _, w := range run.Writes {
			if w.Port == outPort {
				writes = true
			}
		}
		if reads && writes {
			return run
		}
	}
	return nil
}

func findConnector(sys *model.System, a, b model.PortRef2) (*model.Connector, error) {
	for i := range sys.Connectors {
		c := &sys.Connectors[i]
		if c.FromSWC == a.SWC && c.FromPort == a.Port && c.ToSWC == b.SWC && c.ToPort == b.Port {
			return c, nil
		}
	}
	return nil, fmt.Errorf("no connector %s.%s -> %s.%s", a.SWC, a.Port, b.SWC, b.Port)
}

func findRouteSignal(routes []vfb.Route, conn *model.Connector) *vfb.Route {
	for i := range routes {
		r := &routes[i]
		if r.Conn.FromSWC == conn.FromSWC && r.Conn.FromPort == conn.FromPort &&
			r.Conn.ToSWC == conn.ToSWC && r.Conn.ToPort == conn.ToPort {
			return r
		}
	}
	return nil
}
