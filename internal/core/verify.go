// Package core is the paper's contribution layer: given a deployed
// component system it (a) statically verifies schedulability on every ECU
// and bus, contract compatibility, and end-to-end latency constraints —
// the "prior to implementation system configuration checks" §2 calls for —
// and (b) checks composability dynamically, by comparing component timing
// before and after integration or extension (§4's "stability of prior
// services").
//
// Verification is embarrassingly parallel over ECUs, buses and constraint
// chains, so Verify fans the per-item analyses out on a bounded worker
// pool and merges the reports in deterministic order; a Pipeline carries
// the worker count plus memoized analysis caches so that design-space
// exploration, which re-verifies near-identical candidate mappings, pays
// for each distinct task set and bus frame set only once.
package core

import (
	"fmt"
	"sort"
	"time"

	"autorte/internal/can"
	"autorte/internal/contract"
	"autorte/internal/e2e"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/par"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/sim"
	"autorte/internal/taskset"
	"autorte/internal/vfb"
)

// ECUReport is one ECU's schedulability verdict.
type ECUReport struct {
	Name        string
	Utilization float64
	Results     []sched.Result
	Schedulable bool
}

// BusReport is one bus's schedulability verdict.
type BusReport struct {
	Name        string
	Kind        model.BusKind
	Load        float64
	Schedulable bool
	Detail      string
}

// ChainReport is one latency constraint's verdict.
type ChainReport struct {
	Name   string
	Bound  sim.Duration
	Budget sim.Duration
	OK     bool
	Err    string
}

// Report aggregates static verification.
type Report struct {
	ECUs      []ECUReport
	Buses     []BusReport
	Chains    []ChainReport
	Contracts *contract.Report
	Warnings  []string
}

// OK reports overall static admissibility.
func (r *Report) OK() bool {
	for _, e := range r.ECUs {
		if !e.Schedulable {
			return false
		}
	}
	for _, b := range r.Buses {
		if !b.Schedulable {
			return false
		}
	}
	for _, c := range r.Chains {
		if !c.OK {
			return false
		}
	}
	return r.Contracts == nil || r.Contracts.OK()
}

// Pipeline is a reusable verification context: a bounded worker pool size
// plus memoized analysis caches shared across Verify calls. The zero
// value is valid (GOMAXPROCS workers, no caching); NewPipeline enables
// all caches. A single Pipeline is safe for concurrent use and is meant
// to be shared across the candidate evaluations of a DSE run, where most
// ECUs' task sets survive from one mapping to the next.
type Pipeline struct {
	// Workers bounds the fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// RTA memoizes per-ECU and per-chain-stage response-time analysis.
	RTA *sched.Cache
	// CAN memoizes CAN bus analysis.
	CAN *can.Cache
	// FlexRay memoizes static-segment schedule synthesis.
	FlexRay *flexray.SynthCache
	// Tracer records wall-clock spans around every Verify stage and
	// per-item job when non-nil (export with Tracer.WriteChrome or
	// Tracer.WriteTree). Nil — the default — traces nothing.
	Tracer *obs.Tracer

	// reg receives stage-duration histograms once Observe attaches it.
	reg *obs.Registry
}

// Observe attaches a metrics registry to the pipeline: stage-duration
// histograms (pipeline_stage_duration_ns by stage), the hit/miss/size
// series of all three analysis caches, and the shared worker-pool
// occupancy metrics.
func (p *Pipeline) Observe(reg *obs.Registry) {
	p.reg = reg
	p.RTA.Observe(reg)
	p.CAN.Observe(reg)
	p.FlexRay.Observe(reg)
	par.Observe(reg)
}

// stage opens one timed pipeline stage: a tracer span (named by stage
// plus an optional per-item detail) and, when a registry is attached, a
// sample in the per-stage duration histogram. The returned func closes
// both. Cheap no-op when neither tracer nor registry is set.
func (p *Pipeline) stage(parent *obs.Span, stage, detail string) func() {
	if p.Tracer == nil && p.reg == nil {
		return func() {}
	}
	name := stage
	if detail != "" {
		name += " " + detail
	}
	sp := p.Tracer.StartChild(parent, name)
	t0 := time.Now() //autovet:allow walltime stage histogram times the host pipeline
	return func() {
		sp.End()
		if p.reg != nil {
			p.reg.Histogram("pipeline_stage_duration_ns",
				"Wall-clock duration of verification pipeline stages.",
				obs.Label{Key: "stage", Value: stage}).Observe(time.Since(t0).Nanoseconds()) //autovet:allow walltime stage histogram times the host pipeline
		}
	}
}

// NewPipeline returns a pipeline with all analysis caches enabled.
func NewPipeline(workers int) *Pipeline {
	return &Pipeline{
		Workers: workers,
		RTA:     sched.NewCache(),
		CAN:     can.NewCache(),
		FlexRay: flexray.NewSynthCache(),
	}
}

// Verify statically checks a deployed system with a default pipeline:
// model + VFB validity, fixed-priority schedulability per ECU (with the
// same priority assignment the RTE generates), bus schedulability per
// channel, contract compatibility, and every declared end-to-end latency
// constraint.
func Verify(sys *model.System, contracts map[string]*contract.Contract, opts rte.Options) (*Report, error) {
	return NewPipeline(0).Verify(sys, contracts, opts)
}

// Verify runs the full static check through the pipeline's worker pool
// and caches. The report is identical to a sequential run: every worker
// writes only its own pre-assigned slot and the slots are merged in the
// same order the sequential loops used.
func (p *Pipeline) Verify(sys *model.System, contracts map[string]*contract.Contract, opts rte.Options) (*Report, error) {
	root := p.Tracer.Start("verify")
	defer root.End()
	endSetup := p.stage(root, "verify/setup", "")
	if err := sys.Validate(); err != nil {
		endSetup()
		return nil, err
	}
	if err := vfb.CheckConnectivity(sys); err != nil {
		endSetup()
		return nil, err
	}
	routes, err := vfb.ResolveValidated(sys)
	endSetup()
	if err != nil {
		return nil, err
	}
	rep := &Report{}

	endTasksets := p.stage(root, "verify/tasksets", "")
	taskSets, warnings := BuildTaskSets(sys)
	rep.Warnings = append(rep.Warnings, warnings...)
	var ecus []string
	for e := range taskSets {
		ecus = append(ecus, e)
	}
	sort.Strings(ecus)
	byBus := vfb.ByBus(routes)
	// Each CAN bus's analyzable message set is shared by its bus verdict
	// and by every chain stage crossing it; build it once per Verify.
	busMsgs := buildBusMessages(sys, byBus)
	endTasksets()

	// One job per ECU, per routed bus, per constraint chain, plus one for
	// the contract check; each writes only its own slot. Job order mirrors
	// the sequential loops, so the lowest-index error is the sequential
	// error.
	ecuReports := make([]ECUReport, len(ecus))
	busReports := make([]BusReport, len(sys.Buses))
	busUsed := make([]bool, len(sys.Buses))
	chainReports := make([]ChainReport, len(sys.Constraints))
	var contractRep *contract.Report

	var jobs []func() error
	for i, ecu := range ecus {
		i, ecu := i, ecu
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/ecu", ecu)()
			tasks := taskSets[ecu]
			// Shared (read-only) results: the report only reads them.
			ok, results, err := p.RTA.SchedulableShared(tasks)
			if err != nil {
				return err
			}
			ecuReports[i] = ECUReport{
				Name: ecu, Utilization: sched.TotalUtilization(tasks),
				Results: results, Schedulable: ok,
			}
			return nil
		})
	}
	for i, b := range sys.Buses {
		busRoutes := byBus[b.Name]
		if len(busRoutes) == 0 {
			continue
		}
		i, b := i, b
		busUsed[i] = true
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/bus", b.Name)()
			br, err := p.verifyBus(sys, b, busRoutes, busMsgs[b.Name], opts)
			if err != nil {
				return err
			}
			busReports[i] = br
			return nil
		})
	}
	if contracts != nil {
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/contracts", "")()
			crep, err := contract.CheckSystem(sys, contracts)
			if err != nil {
				return err
			}
			contractRep = crep
			return nil
		})
	}
	for i, lc := range sys.Constraints {
		i, lc := i, lc
		jobs = append(jobs, func() error {
			defer p.stage(root, "verify/chain", lc.Name)()
			cr := ChainReport{Name: lc.Name, Budget: lc.Budget}
			bound, _, err := p.chainBound(sys, lc, taskSets, byBus, busMsgs, nil, opts)
			if err != nil {
				cr.Err = err.Error()
			} else {
				cr.Bound = bound
				cr.OK = bound <= lc.Budget
			}
			chainReports[i] = cr
			return nil
		})
	}
	if err := par.ForEach(p.Workers, len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}

	rep.ECUs = ecuReports
	for i := range busReports {
		if busUsed[i] {
			rep.Buses = append(rep.Buses, busReports[i])
		}
	}
	rep.Contracts = contractRep
	rep.Chains = chainReports
	return rep, nil
}

// buildBusMessages derives each routed CAN bus's analyzable message set
// once — the bus verdict and every chain stage crossing the bus share it
// read-only.
func buildBusMessages(sys *model.System, byBus map[string][]vfb.Route) map[string][]*can.Message {
	var out map[string][]*can.Message
	for name, rs := range byBus {
		b := sys.BusByName(name)
		if b == nil || b.Kind != model.BusCAN {
			continue
		}
		if out == nil {
			out = make(map[string][]*can.Message, len(byBus))
		}
		out[name] = canMessages(rs, b.BitRate)
	}
	return out
}

// verifyBus runs the per-channel schedulability analysis for one bus.
// msgs is the bus's prebuilt CAN message set (nil for non-CAN buses).
func (p *Pipeline) verifyBus(sys *model.System, b *model.Bus, busRoutes []vfb.Route, msgs []*can.Message, opts rte.Options) (BusReport, error) {
	br := BusReport{Name: b.Name, Kind: b.Kind, Schedulable: true}
	switch b.Kind {
	case model.BusCAN:
		cfg := can.Config{BitRate: b.BitRate}
		// The verdict only reads the responses; the shared variant skips
		// the per-call result copy.
		rs, err := p.CAN.AnalyzeShared(cfg, msgs)
		if err != nil {
			return br, err
		}
		br.Load = can.TotalUtilization(cfg, msgs)
		for _, r := range rs {
			if !r.Schedulable {
				br.Schedulable = false
				br.Detail = fmt.Sprintf("%s unschedulable (WCRT %v)", r.Message.Name, r.WCRT)
			}
		}
	case model.BusFlexRay:
		if _, err := p.flexraySchedule(defaultFlexRay(opts), busRoutes); err != nil {
			br.Schedulable = false
			br.Detail = err.Error()
		}
	case model.BusTTP:
		// TDMA capacity: each sender ECU gets one slot per round; a
		// signal's period must exceed the round length.
		round := opts.TTPSlotLength
		if round == 0 {
			round = sim.US(250)
		}
		nodes := 0
		for _, e := range sys.ECUs {
			for _, eb := range e.Buses {
				if eb == b.Name {
					nodes++
				}
			}
		}
		roundLen := sim.Duration(nodes) * round
		for _, r := range busRoutes {
			if r.Period > 0 && sim.Duration(r.Period) < roundLen {
				br.Schedulable = false
				br.Detail = fmt.Sprintf("%s period %v below TDMA round %v", r.SignalName, sim.Duration(r.Period), roundLen)
			}
		}
	}
	return br, nil
}

// BuildTaskSets derives the analyzable task set per ECU, using the same
// priority assignment the RTE generator applies (event-driven first, then
// rate-monotonic). Event-driven runnables inherit the period of their
// triggering producer; runnables whose rate cannot be derived are skipped
// with a warning. (Shared with the deployment search via package taskset.)
func BuildTaskSets(sys *model.System) (map[string][]sched.Task, []string) {
	return taskset.Build(sys)
}

// EffectivePeriod is a convenience wrapper over the model's shared rate
// derivation (see model.System.EffectivePeriod).
func EffectivePeriod(sys *model.System, comp *model.SWC, run *model.Runnable) sim.Duration {
	return sys.EffectivePeriod(comp, run)
}

// canMessages reconstructs the analyzable message set the RTE would put on
// a CAN bus for the given routes (same deterministic ID assignment).
func canMessages(routes []vfb.Route, bitRate int64) []*can.Message {
	// Resolve emits routes sorted by signal name and ByBus preserves that
	// order, so the per-call copy+sort only runs for unsorted callers.
	sorted := routes
	for i := 1; i < len(routes); i++ {
		if routes[i-1].SignalName > routes[i].SignalName {
			sorted = append([]vfb.Route(nil), routes...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].SignalName < sorted[j].SignalName })
			break
		}
	}
	// One backing array for the frames instead of a heap object each.
	backing := make([]can.Message, 0, len(sorted))
	out := make([]*can.Message, 0, len(sorted))
	for i, r := range sorted {
		if r.Period <= 0 {
			continue // sporadic routes need explicit MINTs; skipped here
		}
		backing = append(backing, can.Message{
			Name: r.SignalName, ID: uint32(0x100 + i),
			DLC: (r.Bits + 7) / 8, Period: sim.Duration(r.Period),
		})
		out = append(out, &backing[len(backing)-1])
	}
	return out
}

// chainBound composes the analytic end-to-end bound of a constraint chain
// from task RTA, bus analysis and sampling stages, with jitter propagation
// (package e2e semantics: each stage's bound feeds the next stage's
// release jitter; sampling stages absorb it). Stages are evaluated in
// place as stack values — no per-chain []Stage composition — since a
// large system bounds hundreds of stages per verification pass. Stage
// analyses run through the pipeline caches; a non-nil ctx additionally
// pins each resolved analysis for the pass, so repeated stages skip even
// the cache-key serialization. The returned bus list names every bus
// segment the bound crossed — the dependency set incremental
// re-verification invalidates on.
func (p *Pipeline) chainBound(sys *model.System, lc model.LatencyConstraint,
	taskSets map[string][]sched.Task, byBus map[string][]vfb.Route,
	busMsgs map[string][]*can.Message, ctx *analysisCtx, opts rte.Options) (sim.Duration, []string, error) {
	var total, jitter sim.Duration
	var depBuses []string
	// One method-value binding per chain instead of one per stage.
	rta := p.RTA.ResponseTimesShared
	analyze := p.CAN.AnalyzeShared
	taskStage := func(name, ecu string) error {
		ts := e2e.TaskStage{Name: name, Tasks: taskSets[ecu], Target: name, RTA: rta}
		if ctx != nil {
			rs, err := ctx.ecuResults(ecu, ts.Tasks)
			if err != nil {
				return err
			}
			ts.Results = rs
		}
		b, err := ts.Bound(jitter)
		if err != nil {
			return err
		}
		total += b
		jitter = b
		return nil
	}
	sample := func(name string, period, transfer sim.Duration) error {
		ss := e2e.SamplingStage{Name: name, Period: period, Transfer: transfer}
		b, err := ss.Bound(jitter)
		if err != nil {
			return err
		}
		total += b
		jitter = 0
		return nil
	}
	// busStage evaluates the analytic stage for one bus segment of a
	// route.
	busStage := func(busName string, signal *vfb.Route) error {
		bus := sys.BusByName(busName)
		if bus == nil {
			return fmt.Errorf("unknown bus %q", busName)
		}
		switch bus.Kind {
		case model.BusCAN:
			cs := e2e.CANStage{
				Name: busName, Cfg: can.Config{BitRate: bus.BitRate},
				Messages: busMsgs[busName], Target: signal.SignalName,
				Analyze: analyze,
			}
			if ctx != nil {
				rs, err := ctx.canResponses(busName, cs.Cfg, cs.Messages)
				if err != nil {
					return err
				}
				cs.Responses = rs
			}
			b, err := cs.Bound(jitter)
			if err != nil {
				return err
			}
			total += b
			jitter = b
		case model.BusFlexRay:
			cfg := defaultFlexRay(opts)
			// The bound must reflect the actual synthesized slot position:
			// worst case is one full repetition of waiting plus the slot.
			var as map[string]flexray.Assignment
			var err error
			if ctx != nil {
				as, err = ctx.flexSchedule(busName, cfg, byBus[busName])
			} else {
				as, err = p.flexraySchedule(cfg, byBus[busName])
			}
			if err != nil {
				return err
			}
			a, ok := as[signal.SignalName]
			if !ok {
				return fmt.Errorf("signal %s not in static schedule of %s", signal.SignalName, busName)
			}
			// Delivery completes at the slot end within the cycle.
			return sample(busName, sim.Duration(a.Repetition)*cfg.CycleLength(), sim.Duration(a.SlotID)*cfg.SlotLength)
		case model.BusTTP:
			slot := opts.TTPSlotLength
			if slot == 0 {
				slot = sim.US(250)
			}
			nodes := 0
			for _, e := range sys.ECUs {
				for _, eb := range e.Buses {
					if eb == busName {
						nodes++
					}
				}
			}
			return sample(busName, sim.Duration(nodes)*slot, slot)
		}
		return nil
	}

	// The source stage first: the runnable(s) writing chain[0], iterated
	// in reverse declaration order — the order the prepend-style
	// composition evaluated them in.
	src := sys.Component(lc.Chain[0].SWC)
	for i := len(src.Runnables) - 1; i >= 0; i-- {
		run := &src.Runnables[i]
		for j := len(run.Writes) - 1; j >= 0; j-- {
			if run.Writes[j].Port == lc.Chain[0].Port {
				if err := taskStage(src.Name+"."+run.Name, sys.Mapping[src.Name]); err != nil {
					return 0, nil, err
				}
			}
		}
	}
	for i := 0; i+1 < len(lc.Chain); i++ {
		a, b := lc.Chain[i], lc.Chain[i+1]
		if a.SWC == b.SWC {
			// Internal hop: the runnable consuming a.Port and producing
			// b.Port.
			comp := sys.Component(a.SWC)
			run := findInternalRunnable(comp, a.Port, b.Port)
			if run == nil {
				return 0, nil, fmt.Errorf("chain %s: no runnable in %s from %s to %s", lc.Name, a.SWC, a.Port, b.Port)
			}
			name := a.SWC + "." + run.Name
			if run.Trigger.Kind == model.TimingEvent {
				// Periodic sampler: waits up to one period, then executes.
				if err := sample(name, run.Trigger.Period, 0); err != nil {
					return 0, nil, err
				}
			}
			if err := taskStage(name, sys.Mapping[a.SWC]); err != nil {
				return 0, nil, err
			}
			continue
		}
		// Communication hop a -> b.
		conn, err := findConnector(sys, a, b)
		if err != nil {
			return 0, nil, err
		}
		if sys.Mapping[a.SWC] == sys.Mapping[b.SWC] {
			continue // local: delivered at job completion, already counted
		}
		// The resolved route carries the bus path, including a gateway
		// segment pair when the ECUs share no bus.
		var signal *vfb.Route
		busNames := make([]string, 0, len(byBus))
		for busName := range byBus {
			busNames = append(busNames, busName)
		}
		// Sorted scan: a connector routed over several buses must resolve
		// to the same segment on every run, not per map iteration order.
		sort.Strings(busNames)
		for _, busName := range busNames {
			if s := findRouteSignal(byBus[busName], conn); s != nil {
				signal = s
				break
			}
		}
		if signal == nil {
			return 0, nil, fmt.Errorf("chain %s: no route for connector %s.%s -> %s.%s", lc.Name, a.SWC, a.Port, b.SWC, b.Port)
		}
		depBuses = append(depBuses, signal.Bus)
		if err := busStage(signal.Bus, signal); err != nil {
			return 0, nil, fmt.Errorf("chain %s: %w", lc.Name, err)
		}
		if signal.Via != "" {
			depBuses = append(depBuses, signal.Bus2)
			if err := busStage(signal.Bus2, signal); err != nil {
				return 0, nil, fmt.Errorf("chain %s: %w", lc.Name, err)
			}
		}
	}
	return total, depBuses, nil
}

// defaultFlexRay resolves the effective FlexRay configuration.
func defaultFlexRay(opts rte.Options) flexray.Config {
	if opts.FlexRayConfig.CycleLength() != 0 {
		return opts.FlexRayConfig
	}
	return flexray.Config{
		StaticSlots: 8, SlotLength: sim.US(100),
		Minislots: 40, MinislotLength: sim.US(5), NIT: sim.US(100),
	}
}

// flexraySchedule synthesizes the static schedule for a bus's periodic
// routes (through the pipeline's synthesis cache) and indexes it by signal
// name.
func (p *Pipeline) flexraySchedule(cfg flexray.Config, routes []vfb.Route) (map[string]flexray.Assignment, error) {
	var sigs []flexray.Signal
	for _, r := range routes {
		if r.Period > 0 {
			sigs = append(sigs, flexray.Signal{Name: r.SignalName, Period: sim.Duration(r.Period)})
		}
	}
	as, err := p.FlexRay.SynthesizeShared(cfg, sigs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]flexray.Assignment, len(as))
	for _, a := range as {
		out[a.Signal.Name] = a
	}
	return out, nil
}

func findInternalRunnable(comp *model.SWC, inPort, outPort string) *model.Runnable {
	for i := range comp.Runnables {
		run := &comp.Runnables[i]
		reads := run.Trigger.Port == inPort
		for _, rr := range run.Reads {
			if rr.Port == inPort {
				reads = true
			}
		}
		writes := false
		for _, w := range run.Writes {
			if w.Port == outPort {
				writes = true
			}
		}
		if reads && writes {
			return run
		}
	}
	return nil
}

func findConnector(sys *model.System, a, b model.PortRef2) (*model.Connector, error) {
	for i := range sys.Connectors {
		c := &sys.Connectors[i]
		if c.FromSWC == a.SWC && c.FromPort == a.Port && c.ToSWC == b.SWC && c.ToPort == b.Port {
			return c, nil
		}
	}
	return nil, fmt.Errorf("no connector %s.%s -> %s.%s", a.SWC, a.Port, b.SWC, b.Port)
}

func findRouteSignal(routes []vfb.Route, conn *model.Connector) *vfb.Route {
	for i := range routes {
		r := &routes[i]
		if r.Conn.FromSWC == conn.FromSWC && r.Conn.FromPort == conn.FromPort &&
			r.Conn.ToSWC == conn.ToSWC && r.Conn.ToPort == conn.ToPort {
			return r
		}
	}
	return nil
}
