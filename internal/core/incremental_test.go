package core

import (
	"fmt"
	"reflect"
	"testing"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

// incrementalVehicle builds a deployed vehicle with real chain constraints
// and cross-domain traffic — every report section (ECUs, buses, chains)
// non-trivially populated.
func incrementalVehicle(t *testing.T) *model.System {
	t.Helper()
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{
		ECUsPerDAS:       3,
		CrossDASLinks:    2,
		ChainConstraints: true,
		BusBitRate:       1_000_000,
	}, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// mutate moves n random components to random ECUs (possibly their current
// one) and returns the new full mapping.
func mutate(sys *model.System, r *sim.Rand, n int) map[string]string {
	next := make(map[string]string, len(sys.Mapping))
	for c, e := range sys.Mapping {
		next[c] = e
	}
	for i := 0; i < n; i++ {
		comp := sys.Components[r.Intn(len(sys.Components))]
		next[comp.Name] = sys.ECUs[r.Intn(len(sys.ECUs))].Name
	}
	return next
}

func TestIncrementalMatchesFullVerify(t *testing.T) {
	sys := incrementalVehicle(t)
	opts := rte.Options{}
	inc, err := NewIncremental(NewPipeline(1), sys, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string, got *Report) {
		t.Helper()
		want, err := NewPipeline(1).Verify(sys, nil, opts)
		if err != nil {
			t.Fatalf("%s: full verify: %v", step, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: incremental report diverges from full verify\n got: %+v\nwant: %+v", step, got, want)
		}
	}
	check("initial", inc.Report())

	r := sim.NewRand(99)
	for step := 0; step < 40; step++ {
		// Mostly single-entry moves (the DSE shape), some multi-moves, and
		// an occasional no-op pass.
		n := 1
		switch step % 8 {
		case 3:
			n = 2
		case 5:
			n = 3
		case 7:
			n = 0
		}
		got, err := inc.Reverify(mutate(sys, r, n))
		if err != nil {
			t.Fatalf("step %d: reverify: %v", step, err)
		}
		check(fmt.Sprintf("step %d (%d moves)", step, n), got)
	}
	recomputed, reused := inc.Stats()
	if recomputed == 0 || reused == 0 {
		t.Fatalf("stats: recomputed=%d reused=%d — the sweep should both reuse and recompute", recomputed, reused)
	}
	// Single-entry moves must not re-verify the whole system: over the
	// sweep, retained results must dominate recomputed ones.
	if reused < recomputed {
		t.Fatalf("stats: reused=%d < recomputed=%d — incremental layer recomputes too much", reused, recomputed)
	}
}

// TestIncrementalConsolidation drives the mapping far from the generated
// federated layout — piling components onto one ECU empties others, which
// must drop cleanly from the report.
func TestIncrementalConsolidation(t *testing.T) {
	sys := incrementalVehicle(t)
	opts := rte.Options{}
	inc, err := NewIncremental(NewPipeline(1), sys, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	target := sys.ECUs[0].Name
	next := make(map[string]string, len(sys.Mapping))
	for c := range sys.Mapping {
		next[c] = target
	}
	got, err := inc.Reverify(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ECUs) != 1 || got.ECUs[0].Name != target {
		t.Fatalf("consolidated report should hold exactly ECU %s, got %d ECUs", target, len(got.ECUs))
	}
	if len(got.Buses) != 0 {
		t.Fatalf("fully local mapping should route no bus, got %d bus reports", len(got.Buses))
	}
	want, err := NewPipeline(1).Verify(sys, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("consolidated incremental report diverges from full verify")
	}
	// And back out again: the retained state must survive the round trip.
	back := make(map[string]string, len(sys.Mapping))
	for i, c := range sys.Components {
		back[c.Name] = sys.ECUs[i%len(sys.ECUs)].Name
	}
	got, err = inc.Reverify(back)
	if err != nil {
		t.Fatal(err)
	}
	want, err = NewPipeline(1).Verify(sys, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip incremental report diverges from full verify")
	}
}

func TestIncrementalRejectsUnknownComponent(t *testing.T) {
	sys := incrementalVehicle(t)
	inc, err := NewIncremental(NewPipeline(1), sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := mutate(sys, sim.NewRand(1), 0)
	bad["ghost"] = sys.ECUs[0].Name
	if _, err := inc.Reverify(bad); err == nil {
		t.Fatal("mapping with an extra component should be rejected")
	}
	delete(bad, "ghost")
	delete(bad, sys.Components[0].Name)
	if _, err := inc.Reverify(bad); err == nil {
		t.Fatal("mapping missing a component should be rejected")
	}
}
