package core

import (
	"strings"
	"testing"

	"autorte/internal/obs"
	"autorte/internal/rte"
)

// TestVerifyPopulatesMetrics runs an instrumented pipeline and checks
// that the registry surfaces real work: cache traffic, per-stage
// duration histograms, and — on a second verify of the same system —
// cache hits from memoization.
func TestVerifyPopulatesMetrics(t *testing.T) {
	sys := vehicle(t, 1)
	p := NewPipeline(2)
	reg := obs.NewRegistry()
	p.Observe(reg)
	if _, err := p.Verify(sys, nil, rte.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(sys, nil, rte.Options{}); err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	hist := map[string]uint64{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		for _, l := range s.Labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		byName[key] = s.Value
		if s.Kind == obs.KindHistogram.String() {
			hist[key] = s.Count
		}
	}
	if byName["analysis_cache_misses_total{cache=rta}"] == 0 {
		t.Fatal("no RTA cache misses recorded after verify")
	}
	if byName["analysis_cache_hits_total{cache=rta}"] == 0 {
		t.Fatal("second verify of the same system should hit the RTA cache")
	}
	for _, stage := range []string{"verify/setup", "verify/ecu", "verify/bus"} {
		if hist["pipeline_stage_duration_ns{stage="+stage+"}"] == 0 {
			t.Fatalf("stage %q has no duration observations", stage)
		}
	}
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pipeline_stage_duration_ns_bucket") {
		t.Fatal("Prometheus export misses the stage histogram")
	}
}

// TestVerifyRecordsSpans checks the tracer captures the stage tree:
// a verify root with per-ECU children, exportable as both a text tree
// and a Chrome trace document.
func TestVerifyRecordsSpans(t *testing.T) {
	sys := vehicle(t, 1)
	p := NewPipeline(2)
	p.Tracer = obs.NewTracer()
	if _, err := p.Verify(sys, nil, rte.Options{}); err != nil {
		t.Fatal(err)
	}
	if p.Tracer.Len() < 1+len(sys.ECUs) {
		t.Fatalf("recorded %d spans, want at least root + %d ECU stages",
			p.Tracer.Len(), len(sys.ECUs))
	}
	var tree strings.Builder
	if err := p.Tracer.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"verify ", "verify/setup", "verify/ecu "} {
		if !strings.Contains(tree.String(), want) {
			t.Fatalf("span tree missing %q:\n%s", want, tree.String())
		}
	}
	var chrome strings.Builder
	if err := p.Tracer.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"ph":"X"`) {
		t.Fatal("Chrome export has no complete events")
	}
}

// TestUninstrumentedPipelineUnaffected pins the zero-cost default: a
// pipeline without Observe/Tracer verifies identically (nil spans and
// nil registry are no-ops on the hot path).
func TestUninstrumentedPipelineUnaffected(t *testing.T) {
	sys := vehicle(t, 1)
	plain := NewPipeline(2)
	rep, err := plain.Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("uninstrumented verify should pass like the instrumented one")
	}
}
