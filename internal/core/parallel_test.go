package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func demoVehicle(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The parallel pipeline must produce byte-identical reports for any
// worker count and with or without the analysis caches — on both the
// federated demo vehicle and a consolidated mapping (dense task sets).
func TestVerifyParallelMatchesSequential(t *testing.T) {
	federated := demoVehicle(t, 1)
	consolidated, err := deploy.Greedy(federated, deploy.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	for name, sys := range map[string]*model.System{
		"federated":    federated,
		"consolidated": consolidated,
	} {
		seq := &Pipeline{Workers: 1} // no caches, strictly sequential
		want, err := seq.Verify(sys, nil, rte.Options{})
		if err != nil {
			t.Fatalf("%s: sequential verify: %v", name, err)
		}
		wantB := reportBytes(t, want)
		for _, workers := range []int{0, 2, 8} {
			p := NewPipeline(workers)         // caches on
			for pass := 0; pass < 2; pass++ { // second pass hits the caches
				got, err := p.Verify(sys, nil, rte.Options{})
				if err != nil {
					t.Fatalf("%s workers=%d pass=%d: %v", name, workers, pass, err)
				}
				if !bytes.Equal(reportBytes(t, got), wantB) {
					t.Fatalf("%s workers=%d pass=%d: report diverges from sequential", name, workers, pass)
				}
			}
		}
	}
}

// Repeated verification through one pipeline — the DSE access pattern —
// must be served mostly from the response-time cache.
func TestPipelineCachesAreExercised(t *testing.T) {
	sys := demoVehicle(t, 1)
	p := NewPipeline(0)
	for i := 0; i < 3; i++ {
		if _, err := p.Verify(sys, nil, rte.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := p.RTA.Stats()
	if misses == 0 {
		t.Fatal("RTA cache never missed — nothing was analyzed?")
	}
	if hits < 2*misses {
		t.Fatalf("RTA cache hits = %d, misses = %d; repeated verification should be cache-dominated", hits, misses)
	}
}

// The demo vehicle on a FlexRay backbone exercises the synthesis cache
// and the parallel FlexRay bus path.
func TestVerifyParallelFlexRayBackbone(t *testing.T) {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{BusKind: model.BusFlexRay}, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	seq := &Pipeline{Workers: 1}
	want, err := seq.Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(4)
	got, err := p.Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, want), reportBytes(t, got)) {
		t.Fatal("FlexRay report diverges between sequential and parallel")
	}
	if hits, misses := p.FlexRay.Stats(); hits+misses == 0 {
		t.Fatal("synthesis cache unused on a FlexRay backbone")
	}
}
