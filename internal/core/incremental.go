// Incremental re-verification: design-space exploration mutates one or two
// mapping entries per candidate, yet a full Verify re-derives every route,
// task set and report from scratch. Incremental retains the verified state
// of the last mapping and, given the next one, re-analyzes only what the
// moves can affect — the task sets and verdicts of the source and target
// ECUs, the routes (and hence message sets and verdicts) of buses a changed
// route crosses, and the constraint chains whose recorded ECU/bus
// dependency sets intersect the dirty sets. Everything else — route
// templates, producer rates, ECU-pair paths, the contract report — is
// mapping-independent and computed exactly once.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"autorte/internal/can"
	"autorte/internal/contract"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/sim"
	"autorte/internal/vfb"
)

// protoTask is the mapping-independent part of one runnable's analysis
// input. Effective periods derive from triggers and connectors only, so a
// runnable's proto survives any re-mapping; only the hosting ECU's speed
// scaling and priority ranks are deployment-dependent.
type protoTask struct {
	compName string
	runName  string
	taskName string // compName + "." + runName (sched.Task.Name)
	sortKey  string // compName + runName (the RTE generator's tie-break)
	period   sim.Duration
	wcet     sim.Duration
	deadline sim.Duration
}

// pathInfo memoizes one ECU pair's communication path. Topology (ECUs and
// their bus attachments) is fixed for the lifetime of an Incremental, so
// the memo never invalidates.
type pathInfo struct {
	bus, via, bus2 string
	err            error
}

// Incremental verifies a system once in full and then re-verifies mutated
// mappings at the cost of the delta. Reports are identical — field for
// field — to a fresh Pipeline.Verify of the same mapping. Not safe for
// concurrent use: a DSE loop owns one Incremental per search thread.
type Incremental struct {
	p         *Pipeline
	sys       *model.System
	contracts map[string]*contract.Contract
	opts      rte.Options

	// Mapping-independent precomputation.
	protos      map[string][]protoTask // per component, in runnable order
	tmpls       []vfb.Template         // sorted by SignalName
	tmplsByComp map[string][]int       // template indexes touching a comp
	paths       map[[2]string]pathInfo

	// State of the last verified mapping.
	mapping   map[string]string
	routes    []vfb.Route
	byBus     map[string][]vfb.Route
	busMsgs   map[string][]*can.Message
	taskSets  map[string][]sched.Task
	ecuProtos map[string][]protoTask // per hosting ECU, analysis order
	warnings  []string

	ecuRep      map[string]ECUReport
	busRep      map[string]BusReport
	busUsed     map[string]bool
	chainRep    []ChainReport
	chainECUs   [][]string // ECUs the chain's stages read (last eval)
	chainBuses  [][]string // bus segments the chain's bound crossed
	contractRep *contract.Report

	reverifies atomic.Uint64
	recomputed atomic.Uint64 // items re-analyzed across reverifies
	reused     atomic.Uint64 // items served from retained state
}

// NewIncremental verifies sys in full through p's caches and retains the
// state needed to re-verify mutated mappings incrementally. The initial
// report is available via Report().
func NewIncremental(p *Pipeline, sys *model.System, contracts map[string]*contract.Contract, opts rte.Options) (*Incremental, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := vfb.CheckConnectivity(sys); err != nil {
		return nil, err
	}
	inc := &Incremental{
		p: p, sys: sys, contracts: contracts, opts: opts,
		protos:      map[string][]protoTask{},
		tmplsByComp: map[string][]int{},
		paths:       map[[2]string]pathInfo{},
		mapping:     make(map[string]string, len(sys.Mapping)),
		ecuRep:      map[string]ECUReport{},
		busRep:      map[string]BusReport{},
		busUsed:     map[string]bool{},
	}
	for c, e := range sys.Mapping {
		inc.mapping[c] = e
	}
	for _, comp := range sys.Components {
		ps := make([]protoTask, len(comp.Runnables))
		for i := range comp.Runnables {
			run := &comp.Runnables[i]
			ps[i] = protoTask{
				compName: comp.Name, runName: run.Name,
				taskName: comp.Name + "." + run.Name,
				sortKey:  comp.Name + run.Name,
				period:   sys.EffectivePeriod(comp, run),
				wcet:     run.WCETNominal,
				deadline: run.Deadline,
			}
		}
		inc.protos[comp.Name] = ps
	}
	inc.tmpls = vfb.Templates(sys)
	for i, t := range inc.tmpls {
		inc.tmplsByComp[t.Conn.FromSWC] = append(inc.tmplsByComp[t.Conn.FromSWC], i)
		if t.Conn.ToSWC != t.Conn.FromSWC {
			inc.tmplsByComp[t.Conn.ToSWC] = append(inc.tmplsByComp[t.Conn.ToSWC], i)
		}
	}
	// Initial full pass.
	routes := make([]vfb.Route, len(inc.tmpls))
	for i, t := range inc.tmpls {
		r, err := t.Materialize(inc.mapping, inc.pathFor)
		if err != nil {
			return nil, err
		}
		routes[i] = r
	}
	inc.routes = routes
	inc.byBus = vfb.ByBus(routes)
	inc.busMsgs = buildBusMessages(sys, inc.byBus)
	inc.taskSets = map[string][]sched.Task{}
	inc.ecuProtos = map[string][]protoTask{}
	dirty := map[string]bool{}
	for _, comp := range sys.Components {
		dirty[inc.mapping[comp.Name]] = true
	}
	for _, ecu := range sortedKeys(dirty) {
		inc.rebuildECU(ecu)
	}
	inc.rebuildWarnings()
	for _, ecu := range sortedKeys(inc.taskSets) {
		rep, err := inc.ecuVerdict(ecu)
		if err != nil {
			return nil, err
		}
		inc.ecuRep[ecu] = rep
	}
	for _, b := range sys.Buses {
		if len(inc.byBus[b.Name]) == 0 {
			continue
		}
		inc.busUsed[b.Name] = true
		br, err := p.verifyBus(sys, b, inc.byBus[b.Name], inc.busMsgs[b.Name], opts)
		if err != nil {
			return nil, err
		}
		inc.busRep[b.Name] = br
	}
	if contracts != nil {
		crep, err := contract.CheckSystem(sys, contracts)
		if err != nil {
			return nil, err
		}
		inc.contractRep = crep
	}
	inc.chainRep = make([]ChainReport, len(sys.Constraints))
	inc.chainECUs = make([][]string, len(sys.Constraints))
	inc.chainBuses = make([][]string, len(sys.Constraints))
	ctx := p.newAnalysisCtx(opts)
	for i, lc := range sys.Constraints {
		inc.evalChain(i, lc, ctx)
	}
	return inc, nil
}

// pathFor resolves and memoizes the communication path of one ECU pair.
func (inc *Incremental) pathFor(src, dst string) (string, string, string, error) {
	k := [2]string{src, dst}
	if p, ok := inc.paths[k]; ok {
		return p.bus, p.via, p.bus2, p.err
	}
	bus, via, bus2, err := vfb.Path(inc.sys, src, dst)
	inc.paths[k] = pathInfo{bus, via, bus2, err}
	return bus, via, bus2, err
}

// rebuildECU re-derives one ECU's sorted proto list and task set from the
// current mapping, reproducing taskset.Build exactly: components grouped in
// declaration order, stable-sorted by (period, name-concat tie-break),
// rate-less runnables ranked but excluded, WCET scaled by ECU speed.
func (inc *Incremental) rebuildECU(ecu string) {
	var infos []protoTask
	for _, comp := range inc.sys.Components {
		if inc.mapping[comp.Name] == ecu {
			infos = append(infos, inc.protos[comp.Name]...)
		}
	}
	if len(infos) == 0 {
		delete(inc.ecuProtos, ecu)
		delete(inc.taskSets, ecu)
		return
	}
	sort.SliceStable(infos, func(i, j int) bool {
		if infos[i].period != infos[j].period {
			return infos[i].period < infos[j].period
		}
		return infos[i].sortKey < infos[j].sortKey
	})
	inc.ecuProtos[ecu] = infos
	speed := 1.0
	if e := inc.sys.ECUByName(ecu); e != nil {
		speed = e.Speed
	}
	var tasks []sched.Task
	for rank, ti := range infos {
		if ti.period <= 0 {
			continue
		}
		tasks = append(tasks, sched.Task{
			Name:     ti.taskName,
			C:        sim.Duration(float64(ti.wcet) / speed),
			T:        ti.period,
			D:        ti.deadline,
			Priority: 1000 - rank,
		})
	}
	if tasks == nil {
		delete(inc.taskSets, ecu)
		return
	}
	inc.taskSets[ecu] = tasks
}

// rebuildWarnings regenerates the rate-less-runnable warnings in the same
// order taskset.Build emits them: sorted ECUs, each ECU's runnables in
// analysis order.
func (inc *Incremental) rebuildWarnings() {
	ecus := make([]string, 0, len(inc.ecuProtos))
	for e := range inc.ecuProtos {
		ecus = append(ecus, e)
	}
	sort.Strings(ecus)
	inc.warnings = nil
	for _, ecu := range ecus {
		for _, ti := range inc.ecuProtos[ecu] {
			if ti.period <= 0 {
				inc.warnings = append(inc.warnings,
					fmt.Sprintf("%s.%s: no derivable rate; excluded from analysis", ti.compName, ti.runName))
			}
		}
	}
}

// ecuVerdict runs the schedulability check of one ECU's current task set.
func (inc *Incremental) ecuVerdict(ecu string) (ECUReport, error) {
	tasks := inc.taskSets[ecu]
	ok, results, err := inc.p.RTA.SchedulableShared(tasks)
	if err != nil {
		return ECUReport{}, err
	}
	return ECUReport{
		Name: ecu, Utilization: sched.TotalUtilization(tasks),
		Results: results, Schedulable: ok,
	}, nil
}

// evalChain re-evaluates constraint i and records its dependency sets.
// ctx pins the pass's resolved analyses: chains over the same ECUs and
// buses share one cache lookup per resource.
func (inc *Incremental) evalChain(i int, lc model.LatencyConstraint, ctx *analysisCtx) {
	cr := ChainReport{Name: lc.Name, Budget: lc.Budget}
	bound, depBuses, err := inc.p.chainBound(inc.sys, lc, inc.taskSets, inc.byBus, inc.busMsgs, ctx, inc.opts)
	if err != nil {
		cr.Err = err.Error()
	} else {
		cr.Bound = bound
		cr.OK = bound <= lc.Budget
	}
	inc.chainRep[i] = cr
	seen := map[string]bool{}
	ecus := make([]string, 0, len(lc.Chain))
	for _, hop := range lc.Chain {
		if e, ok := inc.mapping[hop.SWC]; ok && !seen[e] {
			seen[e] = true
			ecus = append(ecus, e)
		}
	}
	inc.chainECUs[i] = ecus
	inc.chainBuses[i] = depBuses
}

// Report assembles the retained state into a Report identical to what a
// fresh Pipeline.Verify of the current mapping returns.
func (inc *Incremental) Report() *Report {
	rep := &Report{}
	ecus := make([]string, 0, len(inc.taskSets))
	for e := range inc.taskSets {
		ecus = append(ecus, e)
	}
	sort.Strings(ecus)
	rep.ECUs = make([]ECUReport, len(ecus))
	for i, e := range ecus {
		rep.ECUs[i] = inc.ecuRep[e]
	}
	for _, b := range inc.sys.Buses {
		if inc.busUsed[b.Name] {
			rep.Buses = append(rep.Buses, inc.busRep[b.Name])
		}
	}
	rep.Chains = make([]ChainReport, len(inc.chainRep))
	copy(rep.Chains, inc.chainRep)
	rep.Contracts = inc.contractRep
	if len(inc.warnings) > 0 {
		rep.Warnings = append([]string(nil), inc.warnings...)
	}
	return rep
}

// Reverify re-verifies the system under a mutated mapping, re-analyzing
// only the ECUs, buses and chains the moves can affect. mapping must cover
// exactly the mapped components of the original system. On success the
// system's Mapping reflects the new deployment and the retained state
// advances; on error the retained state still describes the previous
// verified mapping.
func (inc *Incremental) Reverify(mapping map[string]string) (*Report, error) {
	defer inc.p.stage(nil, "verify/reverify", "")()
	inc.reverifies.Add(1)
	if len(mapping) != len(inc.mapping) {
		return nil, fmt.Errorf("core: incremental reverify: mapping has %d entries, want %d", len(mapping), len(inc.mapping))
	}
	// Sorted component names: with several unknown components the
	// returned error must not depend on map iteration order, and moved
	// comes out sorted for the commit/restore bookkeeping below.
	comps := make([]string, 0, len(mapping))
	for comp := range mapping {
		comps = append(comps, comp)
	}
	sort.Strings(comps)
	var moved []string
	for _, comp := range comps {
		old, ok := inc.mapping[comp]
		if !ok {
			return nil, fmt.Errorf("core: incremental reverify: unknown component %s", comp)
		}
		if old != mapping[comp] {
			moved = append(moved, comp)
		}
	}
	if len(moved) == 0 {
		inc.reused.Add(uint64(len(inc.ecuRep) + len(inc.busRep) + len(inc.chainRep)))
		return inc.Report(), nil
	}

	dirtyECU := map[string]bool{}
	for _, comp := range moved {
		dirtyECU[inc.mapping[comp]] = true
		dirtyECU[mapping[comp]] = true
	}

	// Commit the mapping move first: route materialization and chain
	// evaluation read it. On error below, restore before returning.
	oldECUs := make([]string, len(moved))
	for i, comp := range moved {
		oldECUs[i] = inc.mapping[comp]
		inc.mapping[comp] = mapping[comp]
		inc.sys.Mapping[comp] = mapping[comp]
	}
	restore := func() {
		for i, comp := range moved {
			inc.mapping[comp] = oldECUs[i]
			inc.sys.Mapping[comp] = oldECUs[i]
		}
	}

	// Re-materialize the routes of every connector touching a moved
	// component; buses a changed route crossed (before or after) are dirty.
	dirtyBus := map[string]bool{}
	touched := map[int]bool{}
	for _, comp := range moved {
		for _, ti := range inc.tmplsByComp[comp] {
			touched[ti] = true
		}
	}
	type routeChange struct {
		idx int
		r   vfb.Route
	}
	var changes []routeChange
	for _, ti := range sortedIntKeys(touched) {
		r, err := inc.tmpls[ti].Materialize(inc.mapping, inc.pathFor)
		if err != nil {
			restore()
			return nil, err
		}
		old := inc.routes[ti]
		if r == old {
			continue
		}
		for _, b := range []string{old.Bus, old.Bus2, r.Bus, r.Bus2} {
			if b != "" {
				dirtyBus[b] = true
			}
		}
		changes = append(changes, routeChange{ti, r})
	}

	// Compute the new state into temporaries so an analysis error leaves
	// the retained state describing the previous verified mapping.
	routes := inc.routes
	if len(changes) > 0 {
		routes = append([]vfb.Route(nil), inc.routes...)
		for _, ch := range changes {
			routes[ch.idx] = ch.r
		}
	}
	byBus := inc.byBus
	busMsgs := inc.busMsgs
	if len(dirtyBus) > 0 {
		byBus = make(map[string][]vfb.Route, len(inc.byBus))
		for b, rs := range inc.byBus {
			if !dirtyBus[b] {
				byBus[b] = rs
			}
		}
		for _, r := range routes {
			if r.Local {
				continue
			}
			if dirtyBus[r.Bus] {
				byBus[r.Bus] = append(byBus[r.Bus], r)
			}
			if r.Via != "" && dirtyBus[r.Bus2] {
				byBus[r.Bus2] = append(byBus[r.Bus2], r)
			}
		}
		busMsgs = make(map[string][]*can.Message, len(inc.busMsgs))
		for b, ms := range inc.busMsgs {
			if !dirtyBus[b] {
				busMsgs[b] = ms
			}
		}
		for b := range dirtyBus {
			bus := inc.sys.BusByName(b)
			if bus == nil || bus.Kind != model.BusCAN || len(byBus[b]) == 0 {
				continue
			}
			busMsgs[b] = canMessages(byBus[b], bus.BitRate)
		}
	}

	// Swap the delta-rebuilt comm state in before re-running analyses (the
	// chain evaluator reads it through the receiver); the previous maps are
	// kept for restoration on error.
	prevRoutes, prevByBus, prevBusMsgs := inc.routes, inc.byBus, inc.busMsgs
	inc.routes, inc.byBus, inc.busMsgs = routes, byBus, busMsgs
	prevTaskSets := make(map[string][]sched.Task, len(dirtyECU))
	prevEcuProtos := make(map[string][]protoTask, len(dirtyECU))
	for _, e := range sortedKeys(dirtyECU) {
		if ts, ok := inc.taskSets[e]; ok {
			prevTaskSets[e] = ts
		}
		if ps, ok := inc.ecuProtos[e]; ok {
			prevEcuProtos[e] = ps
		}
		inc.rebuildECU(e)
	}
	restoreAll := func() {
		inc.routes, inc.byBus, inc.busMsgs = prevRoutes, prevByBus, prevBusMsgs
		for e := range dirtyECU {
			if ts, ok := prevTaskSets[e]; ok {
				inc.taskSets[e] = ts
			} else {
				delete(inc.taskSets, e)
			}
			if ps, ok := prevEcuProtos[e]; ok {
				inc.ecuProtos[e] = ps
			} else {
				delete(inc.ecuProtos, e)
			}
		}
		restore()
	}
	inc.rebuildWarnings()

	// Re-analyze dirty ECUs.
	newEcuRep := make(map[string]ECUReport, len(dirtyECU))
	for _, e := range sortedKeys(dirtyECU) {
		if _, ok := inc.taskSets[e]; !ok {
			continue // ECU lost its last runnable
		}
		rep, err := inc.ecuVerdict(e)
		if err != nil {
			restoreAll()
			return nil, err
		}
		newEcuRep[e] = rep
		inc.recomputed.Add(1)
	}
	inc.reused.Add(uint64(len(inc.ecuRep) - len(prevTaskSets)))

	// Re-analyze dirty buses.
	newBusRep := make(map[string]BusReport, len(dirtyBus))
	newBusUsed := make(map[string]bool, len(dirtyBus))
	for _, b := range sortedKeys(dirtyBus) {
		bus := inc.sys.BusByName(b)
		if bus == nil || len(inc.byBus[b]) == 0 {
			continue
		}
		newBusUsed[b] = true
		br, err := inc.p.verifyBus(inc.sys, bus, inc.byBus[b], inc.busMsgs[b], inc.opts)
		if err != nil {
			restoreAll()
			return nil, err
		}
		newBusRep[b] = br
		inc.recomputed.Add(1)
	}

	// Commit: the analyses can no longer fail (chain errors are recorded
	// in the report, not returned).
	for e := range dirtyECU {
		if rep, ok := newEcuRep[e]; ok {
			inc.ecuRep[e] = rep
		} else {
			delete(inc.ecuRep, e)
		}
	}
	for b := range dirtyBus {
		if br, ok := newBusRep[b]; ok {
			inc.busRep[b] = br
			inc.busUsed[b] = true
		} else {
			delete(inc.busRep, b)
			delete(inc.busUsed, b)
		}
	}

	// Re-evaluate chains whose recorded dependencies intersect the dirty
	// sets (or whose last evaluation errored — conservative, since an
	// errored evaluation recorded no complete dependency set).
	ctx := inc.p.newAnalysisCtx(inc.opts)
	for i, lc := range inc.sys.Constraints {
		dirty := inc.chainRep[i].Err != ""
		for _, e := range inc.chainECUs[i] {
			if dirtyECU[e] {
				dirty = true
				break
			}
		}
		if !dirty {
			for _, b := range inc.chainBuses[i] {
				if dirtyBus[b] {
					dirty = true
					break
				}
			}
		}
		if !dirty {
			inc.reused.Add(1)
			continue
		}
		inc.evalChain(i, lc, ctx)
		inc.recomputed.Add(1)
	}
	return inc.Report(), nil
}

// Stats reports how many per-item analyses Reverify calls re-ran versus
// served from retained state.
func (inc *Incremental) Stats() (recomputed, reused uint64) {
	return inc.recomputed.Load(), inc.reused.Load()
}

// Observe registers the incremental layer's reuse counters.
func (inc *Incremental) Observe(reg *obs.Registry) {
	reg.CounterFunc("incremental_reverify_total", "Incremental re-verification passes.", inc.reverifies.Load)
	reg.CounterFunc("incremental_recomputed_total", "Per-item analyses re-run by incremental re-verification.", inc.recomputed.Load)
	reg.CounterFunc("incremental_reused_total", "Per-item results served from retained state by incremental re-verification.", inc.reused.Load)
}

// sortedKeys returns m's keys sorted. The incremental rebuild and
// verdict loops iterate maps; a fixed order keeps first-error-wins
// reporting (and the rebuild sequence itself) independent of map
// iteration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedIntKeys is sortedKeys for integer-indexed maps (route template
// indices).
func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
