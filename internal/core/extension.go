package core

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// TaskDelta compares one task's worst-case response before and after a
// system change.
type TaskDelta struct {
	Task          string
	Before, After sim.Duration
	MissesBefore  int
	MissesAfter   int
	Degraded      bool // response moved or new misses appeared
}

// ExtensionReport is the outcome of a stability-of-prior-services check
// (composability requirement R2 applied to ECUs): simulate the base
// system, simulate the extended system, compare every base task.
type ExtensionReport struct {
	Deltas []TaskDelta
	// Stable is true when no base task's worst response or miss count
	// increased — integration preserved prior services.
	Stable bool
}

// CheckExtension simulates base and extended (which must contain every
// base component, typically base plus new SWCs) under the same RTE
// options and reports per-task response-time movement. This is the
// dynamic composability check: with timing isolation the report must come
// back Stable; under plain fixed priority it generally does not (E9).
func CheckExtension(base, extended *model.System, opts rte.Options, horizon sim.Time) (*ExtensionReport, error) {
	baseMax, baseMiss, err := simulate(base, opts, horizon)
	if err != nil {
		return nil, fmt.Errorf("core: base simulation: %w", err)
	}
	extMax, extMiss, err := simulate(extended, opts, horizon)
	if err != nil {
		return nil, fmt.Errorf("core: extended simulation: %w", err)
	}
	rep := &ExtensionReport{Stable: true}
	var names []string
	for name := range baseMax {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		after, ok := extMax[name]
		if !ok {
			return nil, fmt.Errorf("core: task %s disappeared in extended system", name)
		}
		d := TaskDelta{
			Task: name, Before: baseMax[name], After: after,
			MissesBefore: baseMiss[name], MissesAfter: extMiss[name],
		}
		d.Degraded = d.After > d.Before || d.MissesAfter > d.MissesBefore
		if d.Degraded {
			rep.Stable = false
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep, nil
}

// simulate runs a system and returns per-task worst response and miss
// counts.
func simulate(sys *model.System, opts rte.Options, horizon sim.Time) (map[string]sim.Duration, map[string]int, error) {
	p, err := rte.Build(sys.Clone(), opts)
	if err != nil {
		return nil, nil, err
	}
	p.Run(horizon)
	worst := map[string]sim.Duration{}
	misses := map[string]int{}
	for _, comp := range sys.Components {
		for i := range comp.Runnables {
			name := comp.Name + "." + comp.Runnables[i].Name
			st := trace.Summarize(p.Trace, name)
			worst[name] = st.Max
			misses[name] = st.MissCount
		}
	}
	return worst, misses, nil
}

// Simulate is the public convenience: build, run, and return the platform
// for inspection.
func Simulate(sys *model.System, opts rte.Options, horizon sim.Time) (*rte.Platform, error) {
	p, err := rte.Build(sys, opts)
	if err != nil {
		return nil, err
	}
	p.Run(horizon)
	return p, nil
}
