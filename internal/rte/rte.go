// Package rte builds and runs the Runtime Environment: the per-ECU
// realization of the Virtual Functional Bus (§2). Given a deployed
// model.System, it generates OS tasks for every runnable, wires local
// communication through value buffers, routes remote communication through
// COM-packed frames on the simulated buses, and triggers data-received
// runnables on delivery.
//
// The RTE is what makes transferability concrete: the same components with
// the same behaviours run unchanged whether a connector resolves to a
// local buffer or a CAN/FlexRay/TTP frame — only latency changes.
package rte

import (
	"fmt"
	"sort"

	"autorte/internal/can"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/osek"
	"autorte/internal/protection"
	"autorte/internal/sim"
	"autorte/internal/trace"
	"autorte/internal/ttp"
	"autorte/internal/vfb"
)

// Behavior is application logic attached to a runnable. It executes at job
// completion: inputs reflect the latest delivered values, outputs are
// published atomically at the job's finish time.
type Behavior func(ctx *Context)

// IsolationKind selects the timing-protection policy Build applies per
// supplier on shared ECUs.
type IsolationKind uint8

const (
	// NoIsolation runs plain fixed-priority scheduling (the AUTOSAR
	// baseline the paper critiques).
	NoIsolation IsolationKind = iota
	// ServerPerSupplier wraps each supplier's tasks in a reservation
	// server sized to its declared utilization.
	ServerPerSupplier
	// TablePerSupplier partitions each ECU's timeline into per-supplier
	// TDMA windows.
	TablePerSupplier
)

func (k IsolationKind) String() string {
	switch k {
	case NoIsolation:
		return "none"
	case ServerPerSupplier:
		return "server"
	default:
		return "table"
	}
}

// Options tunes platform generation.
type Options struct {
	// CANConfig applies to every model.BusCAN channel. Zero value defaults
	// to 500 kbit/s.
	CANConfig can.Config
	// FlexRayConfig applies to every model.BusFlexRay channel. Zero value
	// defaults to a 4-slot/1.1ms cycle.
	FlexRayConfig flexray.Config
	// TTPSlotLength applies to every model.BusTTP channel (default 250us).
	TTPSlotLength sim.Duration
	// EnforceBudgets arms per-job execution budgets at each runnable's
	// declared WCET (the vertical assumption becomes a monitored contract).
	EnforceBudgets bool
	// Isolation selects the timing-protection policy.
	Isolation IsolationKind
	// ServerKind selects the reservation algorithm for ServerPerSupplier.
	ServerKind protection.ServerKind
	// IsolationMargin scales reserved capacity over declared utilization
	// (default 1.25).
	IsolationMargin float64
	// MajorFrame fixes the TablePerSupplier major frame explicitly. Zero
	// derives it from the shortest period on each ECU — convenient, but a
	// new faster task then changes every window ("careful planning ...
	// against future changes", §1). Planned systems set it explicitly.
	MajorFrame sim.Duration
	// Reservations explicitly sizes per-supplier capacity as a CPU
	// fraction, overriding declared-utilization × margin sizing. Planned
	// systems reserve capacity here so that integrating a new supplier
	// later cannot move existing windows.
	Reservations map[string]float64
	// DualChannelFlexRay sends every FlexRay frame produced by a
	// component of ASIL-C or higher redundantly on both physical channels
	// (FlexRay's dependability feature applied by criticality).
	DualChannelFlexRay bool
	// ErrorRecordCap bounds the raw error records the error manager
	// retains (a ring of the most recent reports). Zero selects
	// DefaultErrorRecordCap; negative means unbounded. DTC aggregation
	// and per-kind counts stay exact regardless of the cap.
	ErrorRecordCap int
	// E2E, when non-nil, protects every bus-carried signal route with an
	// AUTOSAR-style end-to-end protection header (CRC + sequence counter
	// + DataID): P01 on CAN segments, P05 on FlexRay segments, each
	// gateway hop protected separately. See E2EOptions.
	E2E *E2EOptions
	// DisableFlight builds the platform without the flight recorder.
	// The recorder is on by default — bounded rings make it cheap — but
	// overhead benchmarks and minimal platforms can opt out.
	DisableFlight bool
	// FlightConfig sizes the flight recorder's rings (zero: defaults).
	FlightConfig obs.FlightConfig
}

func (o *Options) fill() {
	if o.CANConfig.BitRate == 0 {
		o.CANConfig = can.Config{BitRate: 500_000}
	}
	if o.FlexRayConfig.CycleLength() == 0 {
		o.FlexRayConfig = flexray.Config{
			StaticSlots: 8, SlotLength: sim.US(100),
			Minislots: 40, MinislotLength: sim.US(5),
			NIT: sim.US(100),
		}
	}
	if o.TTPSlotLength == 0 {
		o.TTPSlotLength = sim.US(250)
	}
	if o.IsolationMargin == 0 {
		o.IsolationMargin = 1.25
	}
}

// Platform is the generated runtime for a deployed system.
type Platform struct {
	K     *sim.Kernel
	Trace *trace.Recorder
	Sys   *model.System
	// Errors is the platform error manager (§2 error handling).
	Errors *ErrorManager
	// Metrics is the platform's metrics registry, always present: kernel
	// event counts, error-manager counters and trace volume register here
	// at Build time, and applications may add their own series.
	Metrics *obs.Registry
	// DLT is the structured event log (AUTOSAR DLT style). With the
	// flight recorder on (the default) this is the recorder's bounded
	// ring log, keeping the most recent records at info and above;
	// EnableDLT adjusts the level floor. With DisableFlight it stays nil
	// — every emission is nil-safe and free — until EnableDLT attaches
	// an unbounded log.
	DLT *obs.Log
	// Flight is the always-on flight recorder (nil with DisableFlight):
	// bounded rings of recent DLT records, task/fault span events,
	// metric deltas and platform history, cut into diagnostic bundles by
	// Bundle.
	Flight *obs.Flight

	opts     Options
	cpus     map[string]*osek.CPU
	canBus   map[string]*can.Bus
	frBus    map[string]*flexray.Bus
	ttpBus   map[string]*ttpAdapter
	store    map[string]*cell      // consumer-side value buffers
	tasks    map[string]*osek.Task // "swc.runnable"
	routes   []vfb.Route
	outgoing map[string][]binding // "swc/port/elem" -> sinks
	behavior map[string]Behavior  // "swc.runnable"
	// frSend maps "bus/signal" to the FlexRay send closure; filled by
	// wireFlexRay after schedule synthesis.
	frSend map[string]func(float64)
	// E2E protection state: per-signal channel ends, the consumer-port
	// index behind Context.E2EStatus, and the reception tamper hooks the
	// comm-fault injectors install.
	e2eChans map[string]*e2eChannel
	e2eByDst map[string]*e2eChannel
	rxTamper map[string]RxTamper
	// Replica-switchover state (replica.go): standbys per primary in
	// fail-over preference order, the instance currently delivering each
	// replicated function, and permanently failed ECUs.
	replicas map[string][]string
	active   map[string]string
	deadECU  map[string]bool
	// Hot-standby output gating (replica.go): every group member mapped
	// to its primary, the per-source muted delivery slots the fan-in
	// cells suppress inactive instances into, and the pending switchover
	// marks the latency histogram closes on first delivery.
	primaryOf map[string]string
	muted     map[string][]*mutedEntry
	switchAt  map[string]switchMark
	started  bool
	// Virtual-time sampling state (EnableSampling).
	sampler       *obs.Sampler
	samplerCancel func()
}

// cell is one consumer-side buffer with freshness metadata.
type cell struct {
	value     float64
	writtenAt sim.Time
	written   bool
	updates   int64
}

// binding is one resolved sink of a produced element.
type binding struct {
	route   vfb.Route
	local   bool
	send    func(value float64) // remote: queue on bus
	deliver func(value float64) // local or bus RX side: store + trigger
}

// Build validates the system and generates the full platform.
func Build(sys *model.System, opts Options) (*Platform, error) {
	opts.fill()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := vfb.CheckConnectivity(sys); err != nil {
		return nil, err
	}
	for _, c := range sys.Components {
		if sys.Mapping[c.Name] == "" {
			return nil, fmt.Errorf("rte: component %s is not mapped to an ECU", c.Name)
		}
	}
	routes, err := vfb.Resolve(sys)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		K:        sim.NewKernel(),
		Trace:    &trace.Recorder{},
		Metrics:  obs.NewRegistry(),
		Sys:      sys,
		opts:     opts,
		cpus:     map[string]*osek.CPU{},
		canBus:   map[string]*can.Bus{},
		frBus:    map[string]*flexray.Bus{},
		ttpBus:   map[string]*ttpAdapter{},
		store:    map[string]*cell{},
		tasks:    map[string]*osek.Task{},
		routes:   routes,
		outgoing: map[string][]binding{},
		behavior: map[string]Behavior{},
		frSend:   map[string]func(float64){},
		e2eChans: map[string]*e2eChannel{},
		e2eByDst: map[string]*e2eChannel{},
		rxTamper: map[string]RxTamper{},
	}
	p.Errors = newErrorManager(p)
	p.attachFlight()
	p.K.Observe(p.Metrics)
	p.Metrics.GaugeFunc("rte_trace_records",
		"Records accumulated by the platform trace recorder.",
		func() float64 { return float64(len(p.Trace.Records)) })
	p.Metrics.GaugeFunc("rte_dtcs",
		"Distinct diagnostic trouble codes aggregated from error reports.",
		func() float64 { return float64(p.Errors.DTCCount()) })
	if err := p.buildCPUs(); err != nil {
		return nil, err
	}
	if err := p.buildBuses(); err != nil {
		return nil, err
	}
	if err := p.buildTasks(); err != nil {
		return nil, err
	}
	if err := p.buildRoutes(); err != nil {
		return nil, err
	}
	p.initReplicas()
	return p, nil
}

// MustBuild panics on build error; for tests and examples.
func MustBuild(sys *model.System, opts Options) *Platform {
	p, err := Build(sys, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// SetBehavior attaches application logic to a runnable. Must be called
// before Run.
func (p *Platform) SetBehavior(swc, runnable string, b Behavior) error {
	comp := p.Sys.Component(swc)
	if comp == nil {
		return fmt.Errorf("rte: unknown component %s", swc)
	}
	if comp.Runnable(runnable) == nil {
		return fmt.Errorf("rte: component %s has no runnable %s", swc, runnable)
	}
	p.behavior[swc+"."+runnable] = b
	return nil
}

// MustBehavior is SetBehavior but panics on an unknown component or
// runnable. Experiments and examples use it so a typo'd name fails the
// run loudly instead of leaving the real behavior silently unattached
// and measuring a dead platform.
func (p *Platform) MustBehavior(swc, runnable string, b Behavior) {
	if err := p.SetBehavior(swc, runnable, b); err != nil {
		panic(err)
	}
}

// CPU returns the generated CPU of an ECU.
func (p *Platform) CPU(ecu string) *osek.CPU { return p.cpus[ecu] }

// Task returns the generated OS task of a runnable.
func (p *Platform) Task(swc, runnable string) *osek.Task { return p.tasks[swc+"."+runnable] }

// CANBus returns the simulated CAN channel by name.
func (p *Platform) CANBus(name string) *can.Bus { return p.canBus[name] }

// FlexRayBus returns the simulated FlexRay channel by name.
func (p *Platform) FlexRayBus(name string) *flexray.Bus { return p.frBus[name] }

// TTPCluster returns the simulated TTP cluster by bus name.
func (p *Platform) TTPCluster(name string) *ttp.Cluster {
	if a := p.ttpBus[name]; a != nil {
		return a.cluster
	}
	return nil
}

// Routes returns the resolved communication routes.
func (p *Platform) Routes() []vfb.Route { return p.routes }

// EnableDLT attaches the structured event log, keeping records at or
// above min, and returns it. Before this call every DLT emission hits a
// nil sink and is discarded for free (the nil-*Recorder idiom).
func (p *Platform) EnableDLT(min obs.Level) *obs.Log {
	if p.DLT == nil {
		p.DLT = obs.NewLog(min)
	} else {
		p.DLT.Min = min
	}
	return p.DLT
}

// Run starts every CPU and bus and executes the simulation to the horizon.
func (p *Platform) Run(horizon sim.Time) {
	if !p.started {
		p.started = true
		p.DLT.Emitf(int64(p.K.Now()), obs.LevelInfo, "RTE", "LIFE",
			"platform started: %d ECUs, %d buses, %d tasks",
			len(p.cpus), len(p.canBus)+len(p.frBus)+len(p.ttpBus), len(p.tasks))
		// Name-sorted starts: the initial kernel events must enter the
		// queue in a fixed order so equal-time ties (every CPU and bus
		// starts at t=0) resolve identically on every run.
		for _, name := range sortedNames(p.cpus) {
			p.cpus[name].Start()
		}
		for _, name := range sortedNames(p.canBus) {
			p.canBus[name].Start()
		}
		for _, name := range sortedNames(p.frBus) {
			p.frBus[name].Start()
		}
		for _, name := range sortedNames(p.ttpBus) {
			p.ttpBus[name].start()
		}
		p.startE2ESupervision()
	}
	p.K.Run(horizon)
}

// Stats summarizes the response times of one task or message source.
func (p *Platform) Stats(source string) trace.Stats {
	return trace.Summarize(p.Trace, source)
}

// Value returns the latest delivered value at a consumer port element and
// whether anything arrived yet.
func (p *Platform) Value(swc, port, elem string) (float64, bool) {
	c := p.store[storeKey(swc, port, elem)]
	if c == nil || !c.written {
		return 0, false
	}
	return c.value, true
}

func storeKey(swc, port, elem string) string { return swc + "/" + port + "/" + elem }

// buildCPUs creates one osek.CPU per used ECU.
func (p *Platform) buildCPUs() error {
	for _, e := range p.Sys.ECUs {
		p.cpus[e.Name] = osek.NewCPU(p.K, e.Name, e.Speed, p.Trace)
	}
	return nil
}

// buildTasks creates OS tasks for every runnable with rate-monotonic
// priorities per CPU and the selected isolation policy.
func (p *Platform) buildTasks() error {
	type tinfo struct {
		comp *model.SWC
		run  *model.Runnable
		ecu  string
	}
	perECU := map[string][]tinfo{}
	for _, comp := range p.Sys.Components {
		ecu := p.Sys.Mapping[comp.Name]
		for i := range comp.Runnables {
			perECU[ecu] = append(perECU[ecu], tinfo{comp: comp, run: &comp.Runnables[i], ecu: ecu})
		}
	}
	ecus := make([]string, 0, len(perECU))
	for e := range perECU {
		ecus = append(ecus, e)
	}
	sort.Strings(ecus)
	for _, ecu := range ecus {
		infos := perECU[ecu]
		// Rate-monotonic order on the derived rate (event-driven runnables
		// inherit their producer's period); rate-less runnables sort first.
		// Package core's analysis applies the identical ordering.
		sort.SliceStable(infos, func(i, j int) bool {
			pi := p.Sys.EffectivePeriod(infos[i].comp, infos[i].run)
			pj := p.Sys.EffectivePeriod(infos[j].comp, infos[j].run)
			if pi != pj {
				return pi < pj
			}
			return infos[i].comp.Name+infos[i].run.Name < infos[j].comp.Name+infos[j].run.Name
		})
		seen := map[string]bool{}
		var comps []*model.SWC
		for _, ti := range infos {
			if !seen[ti.comp.Name] {
				seen[ti.comp.Name] = true
				comps = append(comps, ti.comp)
			}
		}
		throttles, err := p.buildIsolation(ecu, comps)
		if err != nil {
			return err
		}
		for rank, ti := range infos {
			name := ti.comp.Name + "." + ti.run.Name
			task := &osek.Task{
				Name:      name,
				Priority:  1000 - rank,
				WCET:      ti.run.WCETNominal,
				Deadline:  ti.run.Deadline,
				Supplier:  ti.comp.Supplier,
				MaxQueued: 4,
			}
			if ti.run.Trigger.Kind == model.TimingEvent {
				task.Period = ti.run.Trigger.Period
				task.Offset = ti.run.Trigger.Offset
			}
			if p.opts.EnforceBudgets {
				task.Budget = ti.run.WCETNominal
			}
			if th := throttles[ti.comp.Supplier]; th != nil {
				task.Throttle = th
			}
			ti := ti
			task.OnFinish = func(job int64) { p.execute(ti.comp, ti.run, job) }
			// Budget exhaustion is a timing error: report it through the
			// consistent error path so mode management and diagnostics
			// see it (§2).
			task.OnAbort = func(job int64) {
				p.Errors.Report(ti.comp.Name, ErrTiming,
					fmt.Sprintf("%s job %d exceeded its execution budget", ti.run.Name, job))
			}
			if err := p.cpus[ecu].AddTask(task); err != nil {
				return err
			}
			p.tasks[name] = task
		}
	}
	return nil
}

// buildIsolation creates per-supplier throttles on one ECU according to
// the isolation policy. Suppliers are sized to their declared utilization
// times the margin.
func (p *Platform) buildIsolation(ecu string, comps []*model.SWC) (map[string]osek.Throttle, error) {
	out := map[string]osek.Throttle{}
	if p.opts.Isolation == NoIsolation {
		return out, nil
	}
	speed := p.Sys.ECUByName(ecu).Speed
	util := map[string]float64{}
	minPeriod := map[string]sim.Duration{}
	var suppliers []string
	for _, c := range comps {
		if _, ok := util[c.Supplier]; !ok {
			suppliers = append(suppliers, c.Supplier)
			minPeriod[c.Supplier] = sim.Infinity
		}
		util[c.Supplier] += c.Utilization() / speed
		for i := range c.Runnables {
			r := &c.Runnables[i]
			if r.Trigger.Kind == model.TimingEvent && r.Trigger.Period < minPeriod[c.Supplier] {
				minPeriod[c.Supplier] = r.Trigger.Period
			}
		}
	}
	sort.Strings(suppliers)
	// reserved returns the CPU fraction set aside for a supplier: the
	// planned reservation when configured, else declared utilization
	// scaled by the margin.
	reserved := func(s string) float64 {
		if f, ok := p.opts.Reservations[s]; ok {
			return f
		}
		return util[s] * p.opts.IsolationMargin
	}
	switch p.opts.Isolation {
	case ServerPerSupplier:
		for _, s := range suppliers {
			period := minPeriod[s]
			if period == sim.Infinity {
				period = sim.MS(5)
			}
			budget := sim.Duration(float64(period) * reserved(s))
			if budget <= 0 {
				budget = period / 100
			}
			if budget > period {
				budget = period
			}
			srv, err := protection.NewServer(ecu+"/"+s, p.opts.ServerKind, budget, period)
			if err != nil {
				return nil, fmt.Errorf("rte: isolation server for supplier %s on %s: %w", s, ecu, err)
			}
			out[s] = srv
		}
	case TablePerSupplier:
		// Windows are allocated sequentially in sorted supplier order,
		// proportional to reserved capacity. With an explicit MajorFrame
		// and explicit Reservations the table is stable under extension:
		// a later supplier (sorting last) lands in the spare tail without
		// moving anyone's window.
		major := p.opts.MajorFrame
		if major == 0 {
			major = sim.Infinity
			for _, s := range suppliers {
				if minPeriod[s] < major {
					major = minPeriod[s]
				}
			}
			if major == sim.Infinity {
				major = sim.MS(5)
			}
		}
		var windows []protection.Window
		cursor := sim.Duration(0)
		for _, s := range suppliers {
			length := sim.Duration(float64(major) * reserved(s))
			if length <= 0 {
				length = major / 100
			}
			windows = append(windows, protection.Window{Partition: s, Start: cursor, Length: length})
			cursor += length
		}
		if cursor > major {
			return nil, fmt.Errorf("rte: ECU %s: supplier reservations (%v) exceed major frame %v", ecu, cursor, major)
		}
		table, err := protection.NewTable(major, windows)
		if err != nil {
			return nil, fmt.Errorf("rte: ECU %s: %w", ecu, err)
		}
		for _, s := range suppliers {
			part, err := table.Partition(s)
			if err != nil {
				return nil, err
			}
			out[s] = part
		}
	default:
		// NoIsolation returned early above: no throttles to build.
	}
	return out, nil
}

// sortedNames returns m's keys sorted, for deterministic start order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
