package rte

import (
	"testing"

	"autorte/internal/e2eprot"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
)

const sigSensorCtrl = "Sensor.out.v->Ctrl.in"

func detectedFaults(p *Platform, class string) uint64 {
	return p.Metrics.Counter("e2e_detected_faults_total",
		"Communication faults detected by E2E protection, by detected class.",
		obs.Label{Key: "class", Value: class}).Value()
}

func e2eChecks(p *Platform, status string) uint64 {
	return p.Metrics.Counter("e2e_checks_total",
		"E2E verification checks on protected channels, by check status.",
		obs.Label{Key: "status", Value: status}).Value()
}

// protectedChain builds the CAN chain with E2E on and the standard
// sensor/controller behaviours attached.
func protectedChain(t *testing.T, opts Options) (*Platform, *int, *float64) {
	t.Helper()
	p := MustBuild(chainSystem(model.BusCAN), opts)
	applied := new(int)
	lastU := new(float64)
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", float64(c.Job())) })
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", c.Read("in", "v")*2) })
	p.SetBehavior("Act", "apply", func(c *Context) { *applied++; *lastU = c.Read("in", "u") })
	return p, applied, lastU
}

func TestE2EProtectedChainDelivers(t *testing.T) {
	p, applied, lastU := protectedChain(t, Options{E2E: &E2EOptions{}})
	p.Run(sim.MS(95))
	if *applied != 10 || *lastU != 18 {
		t.Fatalf("protected chain: applied=%d lastU=%v, want 10/18", *applied, *lastU)
	}
	if n := p.Errors.CountKind(ErrComm); n != 0 {
		t.Fatalf("healthy protected chain reported %d comm errors", n)
	}
	if ok := e2eChecks(p, "ok"); ok < 20 { // two protected hops x 10 sends
		t.Fatalf("e2e_checks_total{ok} = %d, want >= 20", ok)
	}
}

func TestE2ECorruptionDetectedAndDropped(t *testing.T) {
	p, applied, _ := protectedChain(t, Options{E2E: &E2EOptions{}})
	p.TamperRx(sigSensorCtrl, func(_ sim.Time, payload []byte, deliver func([]byte)) {
		cp := append([]byte(nil), payload...)
		cp[0] ^= 0xFF
		deliver(cp)
	})
	p.Run(sim.MS(95))
	if *applied != 0 {
		t.Fatalf("corrupted data reached the actuator %d times", *applied)
	}
	if n := detectedFaults(p, "crc"); n < 9 {
		t.Fatalf("detected crc faults = %d, want >= 9", n)
	}
	if p.Errors.CountKind(ErrComm) == 0 {
		t.Fatal("no comm errors reported for sustained corruption")
	}
}

func TestE2ECorruptionSilentWhenUnprotected(t *testing.T) {
	p, applied, lastU := protectedChain(t, Options{}) // no E2E
	p.TamperRx(sigSensorCtrl, func(_ sim.Time, payload []byte, deliver func([]byte)) {
		cp := append([]byte(nil), payload...)
		cp[0] ^= 0xFF
		deliver(cp)
	})
	p.Run(sim.MS(95))
	// Nothing notices: the corrupted values flow straight through.
	if *applied != 10 {
		t.Fatalf("unprotected chain applied %d times, want 10", *applied)
	}
	if *lastU == 18 {
		t.Fatal("corruption had no effect — tamper did not bite")
	}
	if n := p.Errors.CountKind(ErrComm); n != 0 {
		t.Fatalf("unprotected chain reported %d comm errors without detection means", n)
	}
}

func TestE2EDropDetectedByTimeout(t *testing.T) {
	p, applied, _ := protectedChain(t, Options{E2E: &E2EOptions{}})
	p.TamperRx(sigSensorCtrl, func(sim.Time, []byte, func([]byte)) {}) // drop all
	p.Run(sim.MS(95))
	if *applied != 0 {
		t.Fatalf("dropped stream reached the actuator %d times", *applied)
	}
	if n := detectedFaults(p, "timeout"); n < 5 {
		t.Fatalf("detected timeout faults = %d, want >= 5 (supervision every period past the bound)", n)
	}
	if p.Errors.CountKind(ErrComm) == 0 {
		t.Fatal("no comm errors reported for a dead channel")
	}
}

func TestE2EDuplicateDetected(t *testing.T) {
	p, applied, _ := protectedChain(t, Options{E2E: &E2EOptions{}})
	p.TamperRx(sigSensorCtrl, func(_ sim.Time, payload []byte, deliver func([]byte)) {
		deliver(payload)
		deliver(append([]byte(nil), payload...))
	})
	p.Run(sim.MS(95))
	// Each duplicate is dropped; the chain behaves as if unduplicated.
	if *applied != 10 {
		t.Fatalf("applied %d times under duplication, want 10", *applied)
	}
	if n := detectedFaults(p, "duplicate"); n < 9 {
		t.Fatalf("detected duplicates = %d, want >= 9", n)
	}
}

func TestE2EDuplicateSilentWhenUnprotected(t *testing.T) {
	p, applied, _ := protectedChain(t, Options{})
	p.TamperRx(sigSensorCtrl, func(_ sim.Time, payload []byte, deliver func([]byte)) {
		deliver(payload)
		deliver(append([]byte(nil), payload...))
	})
	p.Run(sim.MS(95))
	if *applied != 20 {
		t.Fatalf("applied %d times, want 20 (every duplicate re-triggers the chain)", *applied)
	}
}

func TestContextE2EStatus(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{E2E: &E2EOptions{}})
	var state e2eprot.SMState
	var protected bool
	p.SetBehavior("Ctrl", "law", func(c *Context) {
		state, protected = c.E2EStatus("in", "v")
		c.Write("cmd", "u", c.Read("in", "v"))
	})
	p.Run(sim.MS(195))
	if !protected {
		t.Fatal("remote protected element not reported as protected")
	}
	if state != e2eprot.SMValid {
		t.Fatalf("qualified state after a healthy run = %v, want valid", state)
	}
	if st, ok := p.E2EState(sigSensorCtrl); !ok || st != e2eprot.SMValid {
		t.Fatalf("platform E2EState = %v/%v, want valid/true", st, ok)
	}

	// Local elements have no protected channel.
	s := chainSystem(model.BusCAN)
	s.Mapping["Ctrl"] = "ecu1"
	s.Mapping["Act"] = "ecu1"
	lp := MustBuild(s, Options{E2E: &E2EOptions{}})
	lp.SetBehavior("Ctrl", "law", func(c *Context) {
		_, protected = c.E2EStatus("in", "v")
	})
	lp.Run(sim.MS(25))
	if protected {
		t.Fatal("local element reported as E2E-protected")
	}
}

func TestE2EFlexRayChannelFailover(t *testing.T) {
	s := chainSystem(model.BusFlexRay)
	p := MustBuild(s, Options{E2E: &E2EOptions{}})
	var lastApply sim.Time
	p.SetBehavior("Act", "apply", func(c *Context) { lastApply = c.Now() })
	// Channel A dies at 50ms. Timeout supervision qualifies the protected
	// streams invalid and fails each frame over to channel B, where
	// delivery resumes.
	p.FlexRayBus("bus0").FailChannel(flexray.ChannelA, sim.MS(50))
	p.Run(sim.MS(250))
	fo := p.Metrics.Counter("e2e_failovers_total",
		"Protected channels moved to a redundant physical channel after invalid qualification.").Value()
	if fo != 2 { // both chain hops ride bus0
		t.Fatalf("failovers = %d, want 2", fo)
	}
	if lastApply < sim.MS(150) {
		t.Fatalf("no deliveries after failover: last apply at %v", lastApply)
	}
	if n := detectedFaults(p, "timeout"); n == 0 {
		t.Fatal("channel death left no timeout detections")
	}
}
