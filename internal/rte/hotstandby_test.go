package rte

import (
	"testing"

	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// hotChain is replicatedChain with the controller's standby hot: both
// instances run from t=0, the standby's outputs suppressed at the fan-in
// until a switchover unmutes them.
func hotChain(t *testing.T) *model.System {
	t.Helper()
	s := chainSystem(model.BusCAN)
	s.ECUs = append(s.ECUs, &model.ECU{Name: "ecu3", Speed: 1, Buses: []string{"bus0"}})
	s.Component("Ctrl").Redundancy = model.Redundancy{Replicas: 2, Mode: model.StandbyActive}
	out, err := deploy.Replicate(s)
	if err != nil {
		t.Fatal(err)
	}
	out.Mapping["Ctrl#1"] = "ecu3"
	return out
}

// A hot standby is scheduled all along — real jobs, real bus frames —
// but only the active instance's outputs reach the consumer; the
// standby's are suppressed and metered.
func TestHotStandbyRunsSuppressed(t *testing.T) {
	p := MustBuild(hotChain(t), Options{})
	var cmds []float64
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", 1) })
	p.SetBehavior("Ctrl#1", "law", func(c *Context) { c.Write("cmd", "u", 2) })
	p.SetBehavior("Act", "apply", func(c *Context) { cmds = append(cmds, c.Read("in", "u")) })
	p.Run(sim.MS(95))

	if n := p.Trace.Count(trace.Finish, "Ctrl#1.law"); n < 8 {
		t.Fatalf("hot standby finished %d jobs, want a full schedule", n)
	}
	if len(cmds) == 0 {
		t.Fatal("actuator never ran")
	}
	for _, v := range cmds {
		if v != 1 {
			t.Fatalf("actuator saw a suppressed standby output: %v", cmds)
		}
	}
	sup := p.Metrics.Counter("rte_suppressed_deliveries_total", "",
		obs.Label{Key: "swc", Value: "Ctrl#1"}).Value()
	if sup < 8 {
		t.Fatalf("suppressed deliveries = %d, want one per standby job", sup)
	}
}

// The hot switchover is an output unmute: the standby's latest muted
// value flushes at the switch itself, so the measured fail-over-to-
// first-output latency is zero. The cold (passive) switch pays the
// resume plus the wait for the next production.
func TestSwitchoverLatencyHotVsCold(t *testing.T) {
	run := func(sys *model.System, mode string) (count uint64, sum int64, cmds *[]float64) {
		p := MustBuild(sys, Options{})
		out := &[]float64{}
		val := map[string]float64{"Ctrl": 1, "Ctrl#1": 2}
		for name, v := range val {
			name, v := name, v
			p.SetBehavior(name, "law", func(c *Context) { c.Write("cmd", "u", v) })
		}
		p.SetBehavior("Act", "apply", func(c *Context) { *out = append(*out, c.Read("in", "u")) })
		p.K.At(sim.MS(42), func() {
			if err := p.FailOver("Ctrl"); err != nil {
				t.Errorf("failover: %v", err)
			}
		})
		p.Run(sim.MS(95))
		h := p.Metrics.Histogram("deploy_switchover_latency_ns", "",
			obs.Label{Key: "mode", Value: mode})
		return h.Count(), h.Sum(), out
	}

	hotCount, hotSum, hotCmds := run(hotChain(t), "active")
	if hotCount != 1 {
		t.Fatalf("hot switchover latency samples = %d, want 1", hotCount)
	}
	if hotSum != 0 {
		t.Fatalf("hot switchover latency = %dns, want 0 (flushed at the switch)", hotSum)
	}

	coldCount, coldSum, coldCmds := run(replicatedChain(t), "passive")
	if coldCount != 1 {
		t.Fatalf("cold switchover latency samples = %d, want 1", coldCount)
	}
	if coldSum <= 0 {
		t.Fatalf("cold switchover latency = %dns, want > 0", coldSum)
	}

	// Both chains must end up consuming the promoted instance's outputs.
	for name, cmds := range map[string]*[]float64{"hot": hotCmds, "cold": coldCmds} {
		got := *cmds
		if len(got) == 0 || got[len(got)-1] != 2 {
			t.Fatalf("%s: actuator never consumed the promoted standby: %v", name, got)
		}
	}
}

// FailBack demotes the promoted replica and restores the primary; the
// demoted standby goes back to shedding (passive) and the consumer
// switches back to primary outputs.
func TestFailBackRestoresPrimary(t *testing.T) {
	p := MustBuild(replicatedChain(t), Options{})
	var cmds []float64
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", 1) })
	p.SetBehavior("Ctrl#1", "law", func(c *Context) { c.Write("cmd", "u", 2) })
	p.SetBehavior("Act", "apply", func(c *Context) { cmds = append(cmds, c.Read("in", "u")) })
	p.K.At(sim.MS(30), func() {
		if err := p.FailOver("Ctrl"); err != nil {
			t.Errorf("failover: %v", err)
		}
	})
	p.K.At(sim.MS(60), func() {
		if err := p.FailBack("Ctrl"); err != nil {
			t.Errorf("failback: %v", err)
		}
	})
	p.Run(sim.MS(95))
	if got := p.ActiveReplica("Ctrl"); got != "Ctrl" {
		t.Fatalf("active replica %q after fail-back, want Ctrl", got)
	}
	if len(cmds) == 0 || cmds[len(cmds)-1] != 1 {
		t.Fatalf("actuator not back on primary outputs: %v", cmds)
	}
	// The demoted standby sheds again: no law jobs near the horizon.
	if n := p.Trace.Count(trace.Finish, "Ctrl#1.law"); n > 4 {
		t.Fatalf("demoted standby kept running: %d jobs", n)
	}
	if n := p.Metrics.Counter("deploy_failbacks_total", "",
		obs.Label{Key: "swc", Value: "Ctrl"}).Value(); n != 1 {
		t.Fatalf("deploy_failbacks_total = %d, want 1", n)
	}
	if p.Trace.Count(trace.Recover, "Ctrl") < 2 {
		t.Fatal("fail-back left no Recover trace record")
	}
}

func TestFailBackErrors(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	if err := p.FailBack("Ctrl"); err == nil {
		t.Fatal("fail-back without a replica group accepted")
	}
	p2 := MustBuild(replicatedChain(t), Options{})
	if err := p2.FailBack("Ctrl"); err == nil {
		t.Fatal("fail-back with the primary already active accepted")
	}
	p2.K.At(sim.MS(20), func() {
		if err := p2.KillECU("ecu2"); err != nil {
			t.Errorf("kill: %v", err)
		}
		if err := p2.FailOver("Ctrl"); err != nil {
			t.Errorf("failover: %v", err)
		}
		if err := p2.FailBack("Ctrl"); err == nil {
			t.Error("fail-back onto a dead primary ECU accepted")
		}
	})
	p2.Run(sim.MS(30))
}

// The PR-9 regression: after a transient failure cured by fail-over, an
// ECU reset of the primary's host must demote the promoted replica back
// once the reboot window elapses — and must NOT when the ECU was killed
// for good.
func TestResetECUDemotesPromotedReplica(t *testing.T) {
	t.Run("transient-reset-restores-primary", func(t *testing.T) {
		p := MustBuild(replicatedChain(t), Options{})
		p.K.At(sim.MS(40), func() {
			if err := p.FailOver("Ctrl"); err != nil {
				t.Errorf("failover: %v", err)
			}
		})
		p.K.At(sim.MS(50), func() {
			if err := p.ResetECU("ecu2", sim.MS(5)); err != nil {
				t.Errorf("reset: %v", err)
			}
			// The demotion waits for the reboot window.
			if got := p.ActiveReplica("Ctrl"); got != "Ctrl#1" {
				t.Errorf("demoted during downtime: active %q", got)
			}
		})
		p.Run(sim.MS(95))
		if got := p.ActiveReplica("Ctrl"); got != "Ctrl" {
			t.Fatalf("active replica %q after reset downtime, want Ctrl restored", got)
		}
		if n := p.Metrics.Counter("deploy_failbacks_total", "",
			obs.Label{Key: "swc", Value: "Ctrl"}).Value(); n != 1 {
			t.Fatalf("deploy_failbacks_total = %d, want 1", n)
		}
		// The restored primary runs; the demoted standby sheds again.
		if p.Trace.Count(trace.Finish, "Ctrl.law") < 8 {
			t.Fatal("restored primary barely ran")
		}
	})

	t.Run("kill-sticks-through-reset", func(t *testing.T) {
		p := MustBuild(replicatedChain(t), Options{})
		p.K.At(sim.MS(40), func() {
			if err := p.KillECU("ecu2"); err != nil {
				t.Errorf("kill: %v", err)
			}
			if err := p.FailOver("Ctrl"); err != nil {
				t.Errorf("failover: %v", err)
			}
		})
		p.K.At(sim.MS(50), func() {
			if err := p.ResetECU("ecu2", sim.MS(5)); err != nil {
				t.Errorf("reset: %v", err)
			}
		})
		p.Run(sim.MS(95))
		if got := p.ActiveReplica("Ctrl"); got != "Ctrl#1" {
			t.Fatalf("kill did not stick: active %q, want Ctrl#1", got)
		}
		if n := p.Metrics.Counter("deploy_failbacks_total", "",
			obs.Label{Key: "swc", Value: "Ctrl"}).Value(); n != 0 {
			t.Fatalf("deploy_failbacks_total = %d, want 0 on a dead ECU", n)
		}
	})

	t.Run("reset-without-replicas-unchanged", func(t *testing.T) {
		p := MustBuild(chainSystem(model.BusCAN), Options{})
		p.K.At(sim.MS(40), func() {
			if err := p.ResetECU("ecu2", sim.MS(5)); err != nil {
				t.Errorf("reset: %v", err)
			}
		})
		p.Run(sim.MS(95))
		if n := p.Metrics.Counter("deploy_failbacks_total", "",
			obs.Label{Key: "swc", Value: "Ctrl"}).Value(); n != 0 {
			t.Fatalf("unreplicated reset failed back: %d", n)
		}
	})
}
