package rte

import (
	"fmt"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Supervise installs alive supervision on a runnable (the watchdog-manager
// pattern): if the runnable completes no job during any supervision window,
// a timing error is reported through the platform error path. Supervision
// re-arms after recovery, so an intermittent stall produces one report per
// stall episode. Call before Run.
func (p *Platform) Supervise(swc, runnable string, window sim.Duration) error {
	name := swc + "." + runnable
	if p.tasks[name] == nil {
		return fmt.Errorf("rte: no task %s to supervise", name)
	}
	if window <= 0 {
		return fmt.Errorf("rte: supervision window must be positive")
	}
	lastCount := 0
	stalled := false
	var check func(at sim.Time)
	check = func(at sim.Time) {
		p.K.AtPrio(at, 25, func() {
			finished := p.Trace.Count(trace.Finish, name)
			if finished == lastCount {
				if !stalled {
					stalled = true
					p.Errors.Report(swc, ErrTiming, runnable+" missed its alive supervision window")
				}
			} else {
				stalled = false
			}
			lastCount = finished
			check(at + window)
		})
	}
	check(p.K.Now() + window)
	return nil
}
