package rte

// Flight-recorder, virtual-time sampling and diagnostic-bundle wiring:
// the platform side of observability v2. The flight recorder is attached
// at Build (bounded rings, always on), the sampler is armed on demand on
// the kernel's virtual-time grid, and Bundle cuts everything into one
// serializable diagnostic snapshot.

import (
	"autorte/internal/obs"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// SamplerPrio orders the sampling grid tick against same-instant model
// events: higher than every substrate priority, so a sample reads the
// state after the instant has settled.
const SamplerPrio = 99

// attachFlight arms the flight recorder on a freshly built platform:
// the bounded DLT ring becomes the platform log and exceptional trace
// records (aborts, misses, drops, errors, recoveries) mirror into the
// span ring.
func (p *Platform) attachFlight() {
	if p.opts.DisableFlight {
		return
	}
	p.Flight = obs.NewFlight(p.opts.FlightConfig)
	p.DLT = p.Flight.DLT
	flight := p.Flight
	// Routine completions, activations and scheduler detail stay out of
	// the ring: the black box keeps exceptional outcomes (liveness is the
	// sampler's job), and the kind mask keeps the sink call itself off
	// the per-record hot path, so a healthy platform pays almost nothing
	// for the always-on recorder.
	p.Trace.SinkKinds = trace.MaskOf(trace.Abort, trace.Miss, trace.Drop, trace.Error, trace.Recover)
	p.Trace.Sink = func(rec trace.Record) {
		flight.Instant(int64(rec.At), rec.Source, rec.Kind.String(), rec.Info)
	}
}

// Note records one platform-history event (mode change, escalation,
// operator action) into the flight recorder. No-op without one.
func (p *Platform) Note(kind, detail string) {
	p.Flight.Note(int64(p.K.Now()), kind, detail)
}

// EnableSampling arms virtual-time metric sampling: every step of
// virtual time (starting now), every registered metric matched by match
// (nil: all) appends its current value to its time series. Counter
// increments additionally feed the flight recorder's metric-delta ring.
// Idempotent: the first call fixes grid and filter, later calls return
// the same sampler.
func (p *Platform) EnableSampling(step sim.Duration, match func(name string) bool) *obs.Sampler {
	if p.sampler != nil {
		return p.sampler
	}
	opt := obs.SamplerOptions{Match: match}
	if p.Flight != nil {
		opt.OnDelta = p.Flight.OnDelta
	}
	p.sampler = obs.NewSampler(p.Metrics, opt)
	s := p.sampler
	p.samplerCancel = p.K.Every(p.K.Now(), step, SamplerPrio, func(now sim.Time) {
		s.Sample(int64(now))
	})
	return p.sampler
}

// Sampler returns the sampler armed by EnableSampling, or nil.
func (p *Platform) Sampler() *obs.Sampler { return p.sampler }

// StopSampling cancels the sampling grid; recorded series remain
// readable. No-op if sampling was never enabled.
func (p *Platform) StopSampling() {
	if p.samplerCancel != nil {
		p.samplerCancel()
		p.samplerCancel = nil
	}
}

// Bundle cuts a diagnostic bundle: one consistent snapshot of the
// flight recorder, the metric registry and any sampled time series,
// stamped with the current virtual time, the given reason and the
// system's configuration hash. With the flight recorder disabled the
// bundle still carries metrics, series and whatever DLT log is attached.
func (p *Platform) Bundle(reason string) *obs.Bundle {
	b := &obs.Bundle{
		Version:    obs.BundleVersion,
		Reason:     reason,
		At:         int64(p.K.Now()),
		ConfigHash: p.Sys.Hash(),
		Meta:       map[string]string{"system": p.Sys.Name},
		Flight:     p.Flight.Snapshot(),
		Metrics:    p.Metrics.Snapshot(),
	}
	if p.Flight == nil && p.DLT != nil {
		b.Flight.DLT = p.DLT.Records()
		b.Flight.DLTTotal = p.DLT.Total()
	}
	if p.sampler != nil {
		b.Series = p.sampler.Series()
	}
	return b
}

// ServeOptions returns the wiring for obs.NewServeHandler over this
// platform: live scrape of its registry, tail of its DLT log, and
// on-demand bundles.
func (p *Platform) ServeOptions() obs.ServeOptions {
	return obs.ServeOptions{
		Registry: p.Metrics,
		DLT:      p.DLT,
		Bundle:   p.Bundle,
	}
}
