package rte

import (
	"autorte/internal/model"
	"autorte/internal/sim"
)

// Context is the API a Behavior uses to talk to the RTE — the generated
// equivalent of Rte_Read/Rte_Write/Rte_Call.
type Context struct {
	p    *Platform
	comp *model.SWC
	run  *model.Runnable
	job  int64
	// onWrite, when set, observes every Write made during this job.
	// Behaviour wrappers (fault injectors, probes) install it to capture
	// what the wrapped behaviour actually published.
	onWrite func(port, elem string, v float64)
}

// OnWrite installs an observer for every Write this job performs. The hook
// lives for the current job only: each job gets a fresh Context. Wrappers
// like fault.BreakSensor use it to latch the last published values.
func (c *Context) OnWrite(fn func(port, elem string, v float64)) { c.onWrite = fn }

// Now returns the current virtual time.
func (c *Context) Now() sim.Time { return c.p.K.Now() }

// Job returns the job index of the executing runnable instance.
func (c *Context) Job() int64 { return c.job }

// Component returns the owning component's name.
func (c *Context) Component() string { return c.comp.Name }

// Runnable returns the executing runnable's name.
func (c *Context) Runnable() string { return c.run.Name }

// Writes returns the runnable's declared output elements, letting generic
// behaviours (probes, fault injectors) publish without hard-coded ports.
func (c *Context) Writes() []model.PortRef { return c.run.Writes }

// Read returns the latest value delivered at a required port element
// (zero if nothing arrived yet).
func (c *Context) Read(port, elem string) float64 {
	v, _ := c.ReadOK(port, elem)
	return v
}

// ReadOK is Read with an explicit arrived-yet flag.
func (c *Context) ReadOK(port, elem string) (float64, bool) {
	cell := c.p.store[storeKey(c.comp.Name, port, elem)]
	if cell == nil || !cell.written {
		return 0, false
	}
	return cell.value, true
}

// Age returns how old the value at a required port element is, or -1 if
// nothing arrived yet. Behaviours use it for temporal-validity checks
// (the firewall pattern).
func (c *Context) Age(port, elem string) sim.Duration {
	cell := c.p.store[storeKey(c.comp.Name, port, elem)]
	if cell == nil || !cell.written {
		return -1
	}
	return c.p.K.Now() - cell.writtenAt
}

// Write publishes a value on a provided port element: local consumers are
// updated (and their data-received runnables activated) immediately;
// remote consumers receive it after the bus latency.
func (c *Context) Write(port, elem string, v float64) {
	if c.onWrite != nil {
		c.onWrite(port, elem, v)
	}
	key := storeKey(c.comp.Name, port, elem)
	for _, b := range c.p.outgoing[key] {
		if b.local {
			b.deliver(v)
		} else if b.send != nil {
			b.send(v)
		}
	}
}

// Invoke calls a client-server operation through a required port: the
// server's operation-invoked runnable is activated (locally or across the
// bus). Fire-and-forget: responses travel over ordinary sender-receiver
// connectors in this model.
func (c *Context) Invoke(port string) {
	// Calls are routed under the client's (swc, port, "__call__") key.
	c.Write(port, "__call__", 1)
}

// Report raises a platform error from application code (e.g. a plausibility
// check detecting a broken sensor).
func (c *Context) Report(kind ErrorKind, info string) {
	c.p.Errors.Report(c.comp.Name, kind, info)
}
