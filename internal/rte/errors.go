package rte

import (
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/trace"
)

// ErrorKind classifies platform errors per the paper's §2 use cases.
type ErrorKind string

// The standardized error classes: broken sensors, communication errors
// and memory failures, plus timing-protection violations.
const (
	ErrSensor ErrorKind = "sensor"
	ErrComm   ErrorKind = "comm"
	ErrMemory ErrorKind = "memory"
	ErrTiming ErrorKind = "timing"
	// ErrFlow is a program-flow (logical supervision) violation: a
	// supervised runnable visited checkpoints out of graph order.
	ErrFlow ErrorKind = "flow"
)

// ErrorRecord is one reported platform error.
type ErrorRecord struct {
	At     int64 // virtual ns
	Source string
	Kind   ErrorKind
	Info   string
}

// DefaultErrorRecordCap is the default bound on retained raw error
// records. Long fault campaigns report without limit; the raw freeze
// frames beyond the cap are the only thing dropped — DTC aggregation and
// per-kind counts stay exact forever.
const DefaultErrorRecordCap = 4096

// ErrorManager implements the consistent error handling concept: errors
// are reported once, recorded, and communicated to the application layer
// by activating subscribed mode-switch runnables. Applications use this
// for mode management and diagnostics.
type ErrorManager struct {
	p *Platform
	// records is a bounded ring of the most recent reports; start is the
	// ring's read index once it has wrapped.
	//autovet:bounded ring capped at ErrorRecordCap; cap<0 is an explicit opt-in
	records []ErrorRecord
	cap     int
	start   int
	total   int64
	// Exact aggregates, maintained on every report so the ring cap never
	// distorts diagnostics.
	//autovet:bounded deduped per (source, kind); growth is bounded by the model
	dtcs     []DTC
	dtcIndex map[string]int
	byKind   map[ErrorKind]int
	// subscribers per kind: tasks to activate.
	subs map[ErrorKind][]string

	// OnReport, when set, observes every report as it is recorded — the
	// hook the health monitor's error qualification attaches to. It runs
	// after the report is counted and logged but before the mode switch.
	OnReport func(ErrorRecord)
}

func newErrorManager(p *Platform) *ErrorManager {
	ringCap := p.opts.ErrorRecordCap
	if ringCap == 0 {
		ringCap = DefaultErrorRecordCap
	}
	if ringCap < 0 {
		ringCap = 0 // explicit "unbounded"
	}
	em := &ErrorManager{
		p: p, cap: ringCap,
		dtcIndex: map[string]int{},
		byKind:   map[ErrorKind]int{},
		subs:     map[ErrorKind][]string{},
	}
	// Auto-subscribe every mode-switch runnable whose Mode names an error
	// kind.
	for _, comp := range p.Sys.Components {
		for i := range comp.Runnables {
			run := &comp.Runnables[i]
			if run.Trigger.Kind == model.ModeSwitchEvent && run.Trigger.Mode != "" {
				kind := ErrorKind(run.Trigger.Mode)
				em.subs[kind] = append(em.subs[kind], comp.Name+"."+run.Name)
			}
		}
	}
	return em
}

// Report records an error and communicates it to the application layer by
// switching into the error's mode (activating subscribed handlers) — the
// "means for mode management and diagnostic purposes" of §2. Every report
// also increments the per-kind rte_errors_total counter and lands in the
// DLT event log when one is attached.
func (em *ErrorManager) Report(source string, kind ErrorKind, info string) {
	now := em.p.K.Now()
	rec := ErrorRecord{At: int64(now), Source: source, Kind: kind, Info: info}
	em.total++
	em.byKind[kind]++
	key := source + "/" + string(kind)
	if i, ok := em.dtcIndex[key]; ok {
		d := &em.dtcs[i]
		d.Occurrences++
		d.LastAt = rec.At
		d.LastInfo = info
	} else {
		em.dtcIndex[key] = len(em.dtcs)
		em.dtcs = append(em.dtcs, DTC{
			Source: source, Kind: kind, Occurrences: 1,
			FirstAt: rec.At, LastAt: rec.At, LastInfo: info,
		})
	}
	if em.cap > 0 && len(em.records) >= em.cap {
		em.records[em.start] = rec
		em.start = (em.start + 1) % em.cap
	} else {
		em.records = append(em.records, rec)
	}
	em.p.Trace.Emit(now, trace.Error, source, em.total, string(kind)+": "+info)
	em.p.Metrics.Counter("rte_errors_total",
		"Errors reported through the platform error manager, by kind.",
		obs.Label{Key: "kind", Value: string(kind)}).Inc()
	em.p.DLT.Emit(int64(now), obs.LevelError, "RTE", "ERR", source+": "+string(kind)+": "+info)
	if em.OnReport != nil {
		em.OnReport(rec)
	}
	em.p.SwitchMode(string(kind))
}

// SwitchMode activates every runnable subscribed to the named mode via a
// ModeSwitchEvent trigger — AUTOSAR mode management. Error kinds double as
// modes; applications can define their own (e.g. "limp-home", "degraded")
// and switch into them from behaviours or test harnesses.
func (p *Platform) SwitchMode(mode string) {
	p.Metrics.Counter("rte_mode_switches_total",
		"Mode switches performed by the platform, by mode.",
		obs.Label{Key: "mode", Value: mode}).Inc()
	p.DLT.Emitf(int64(p.K.Now()), obs.LevelInfo, "RTE", "MODE",
		"mode switch -> %s (%d subscribed handlers)", mode, len(p.Errors.subs[ErrorKind(mode)]))
	for _, taskName := range p.Errors.subs[ErrorKind(mode)] {
		if t := p.tasks[taskName]; t != nil {
			ecu := p.Sys.Mapping[taskName[:indexDot(taskName)]]
			p.cpus[ecu].Activate(t)
		}
	}
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return len(s)
}

// Records returns the retained error records in report order: all of them
// while under the ring cap, the most recent cap reports after that (Total
// counts every report ever made).
func (em *ErrorManager) Records() []ErrorRecord {
	if em.start == 0 {
		return em.records
	}
	out := make([]ErrorRecord, 0, len(em.records))
	out = append(out, em.records[em.start:]...)
	out = append(out, em.records[:em.start]...)
	return out
}

// Total returns how many errors have ever been reported, independent of
// the record ring cap.
func (em *ErrorManager) Total() int64 { return em.total }

// DTC is a diagnostic trouble code entry: the aggregated view of one
// (source, kind) fault with occurrence count and first/last freeze frames
// — the "diagnostic purposes" half of §2's error handling concept.
type DTC struct {
	Source      string
	Kind        ErrorKind
	Occurrences int
	FirstAt     int64 // virtual ns of the first occurrence
	LastAt      int64 // virtual ns of the latest occurrence
	LastInfo    string
}

// DTCs returns the aggregated trouble codes, ordered by first occurrence.
// The aggregation is maintained per report, so it stays exact even after
// the raw record ring has dropped old freeze frames.
func (em *ErrorManager) DTCs() []DTC {
	out := make([]DTC, len(em.dtcs))
	copy(out, em.dtcs)
	return out
}

// DTCCount returns the number of distinct (source, kind) trouble codes.
func (em *ErrorManager) DTCCount() int { return len(em.dtcs) }

// CountKind returns how many errors of a kind were reported, independent
// of the record ring cap.
func (em *ErrorManager) CountKind(kind ErrorKind) int { return em.byKind[kind] }
