package rte

import (
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/trace"
)

// ErrorKind classifies platform errors per the paper's §2 use cases.
type ErrorKind string

// The standardized error classes: broken sensors, communication errors
// and memory failures, plus timing-protection violations.
const (
	ErrSensor ErrorKind = "sensor"
	ErrComm   ErrorKind = "comm"
	ErrMemory ErrorKind = "memory"
	ErrTiming ErrorKind = "timing"
)

// ErrorRecord is one reported platform error.
type ErrorRecord struct {
	At     int64 // virtual ns
	Source string
	Kind   ErrorKind
	Info   string
}

// ErrorManager implements the consistent error handling concept: errors
// are reported once, recorded, and communicated to the application layer
// by activating subscribed mode-switch runnables. Applications use this
// for mode management and diagnostics.
type ErrorManager struct {
	p       *Platform
	records []ErrorRecord
	// subscribers per kind: tasks to activate.
	subs map[ErrorKind][]string
}

func newErrorManager(p *Platform) *ErrorManager {
	em := &ErrorManager{p: p, subs: map[ErrorKind][]string{}}
	// Auto-subscribe every mode-switch runnable whose Mode names an error
	// kind.
	for _, comp := range p.Sys.Components {
		for i := range comp.Runnables {
			run := &comp.Runnables[i]
			if run.Trigger.Kind == model.ModeSwitchEvent && run.Trigger.Mode != "" {
				kind := ErrorKind(run.Trigger.Mode)
				em.subs[kind] = append(em.subs[kind], comp.Name+"."+run.Name)
			}
		}
	}
	return em
}

// Report records an error and communicates it to the application layer by
// switching into the error's mode (activating subscribed handlers) — the
// "means for mode management and diagnostic purposes" of §2. Every report
// also increments the per-kind rte_errors_total counter and lands in the
// DLT event log when one is attached.
func (em *ErrorManager) Report(source string, kind ErrorKind, info string) {
	now := em.p.K.Now()
	em.records = append(em.records, ErrorRecord{At: int64(now), Source: source, Kind: kind, Info: info})
	em.p.Trace.Emit(now, trace.Error, source, int64(len(em.records)), string(kind)+": "+info)
	em.p.Metrics.Counter("rte_errors_total",
		"Errors reported through the platform error manager, by kind.",
		obs.Label{Key: "kind", Value: string(kind)}).Inc()
	em.p.DLT.Emit(int64(now), obs.LevelError, "RTE", "ERR", source+": "+string(kind)+": "+info)
	em.p.SwitchMode(string(kind))
}

// SwitchMode activates every runnable subscribed to the named mode via a
// ModeSwitchEvent trigger — AUTOSAR mode management. Error kinds double as
// modes; applications can define their own (e.g. "limp-home", "degraded")
// and switch into them from behaviours or test harnesses.
func (p *Platform) SwitchMode(mode string) {
	p.Metrics.Counter("rte_mode_switches_total",
		"Mode switches performed by the platform, by mode.",
		obs.Label{Key: "mode", Value: mode}).Inc()
	p.DLT.Emitf(int64(p.K.Now()), obs.LevelInfo, "RTE", "MODE",
		"mode switch -> %s (%d subscribed handlers)", mode, len(p.Errors.subs[ErrorKind(mode)]))
	for _, taskName := range p.Errors.subs[ErrorKind(mode)] {
		if t := p.tasks[taskName]; t != nil {
			ecu := p.Sys.Mapping[taskName[:indexDot(taskName)]]
			p.cpus[ecu].Activate(t)
		}
	}
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return len(s)
}

// Records returns all reported errors.
func (em *ErrorManager) Records() []ErrorRecord { return em.records }

// DTC is a diagnostic trouble code entry: the aggregated view of one
// (source, kind) fault with occurrence count and first/last freeze frames
// — the "diagnostic purposes" half of §2's error handling concept.
type DTC struct {
	Source      string
	Kind        ErrorKind
	Occurrences int
	FirstAt     int64 // virtual ns of the first occurrence
	LastAt      int64 // virtual ns of the latest occurrence
	LastInfo    string
}

// DTCs aggregates the raw error records into trouble codes, ordered by
// first occurrence.
func (em *ErrorManager) DTCs() []DTC {
	index := map[string]int{}
	var out []DTC
	for _, r := range em.records {
		key := r.Source + "/" + string(r.Kind)
		if i, ok := index[key]; ok {
			out[i].Occurrences++
			out[i].LastAt = r.At
			out[i].LastInfo = r.Info
			continue
		}
		index[key] = len(out)
		out = append(out, DTC{
			Source: r.Source, Kind: r.Kind, Occurrences: 1,
			FirstAt: r.At, LastAt: r.At, LastInfo: r.Info,
		})
	}
	return out
}

// CountKind returns how many errors of a kind were reported.
func (em *ErrorManager) CountKind(kind ErrorKind) int {
	n := 0
	for _, r := range em.records {
		if r.Kind == kind {
			n++
		}
	}
	return n
}
