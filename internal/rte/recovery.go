package rte

import (
	"fmt"
	"sort"
	"strings"

	"autorte/internal/obs"
	"autorte/internal/sim"
)

// This file holds the platform-level recovery primitives the health
// subsystem's escalation ladder (internal/health) drives: restart a single
// runnable, restart a whole SWC partition, or reset an ECU. Each primitive
// is usable on its own from application or test code.

// RestartRunnable kills the runnable's in-flight job and queued
// activations. The next activation (periodic release or data arrival)
// starts it fresh — the "restart runnable" rung of recovery escalation.
func (p *Platform) RestartRunnable(swc, runnable string) error {
	name := swc + "." + runnable
	task := p.tasks[name]
	if task == nil {
		return fmt.Errorf("rte: no task %s to restart", name)
	}
	cpu := p.cpus[p.Sys.Mapping[swc]]
	cpu.Kill(task, "restart")
	p.DLT.Emitf(int64(p.K.Now()), obs.LevelWarn, "RTE", "RCVR", "restart runnable %s", name)
	return nil
}

// RestartComponent restarts an SWC partition: every runnable's job and
// activation queue is killed and the component's consumer-side port state
// is re-initialized to never-written, so stale pre-fault inputs cannot
// leak into the restarted partition.
func (p *Platform) RestartComponent(swc string) error {
	comp := p.Sys.Component(swc)
	if comp == nil {
		return fmt.Errorf("rte: unknown component %s", swc)
	}
	cpu := p.cpus[p.Sys.Mapping[swc]]
	for i := range comp.Runnables {
		cpu.Kill(p.tasks[swc+"."+comp.Runnables[i].Name], "partition-restart")
	}
	p.clearStore(swc)
	p.DLT.Emitf(int64(p.K.Now()), obs.LevelWarn, "RTE", "RCVR", "restart partition %s", swc)
	return nil
}

// ResetECU simulates an ECU reset: every job on the ECU is killed, the
// port state of every component mapped there is re-initialized, and all
// its tasks stay suspended for the downtime (the reboot window) before
// activations resume. Tasks that were already suspended — e.g. shed by a
// degraded operating mode — remain suspended after the reset.
func (p *Platform) ResetECU(ecu string, downtime sim.Duration) error {
	cpu := p.cpus[ecu]
	if cpu == nil {
		return fmt.Errorf("rte: unknown ECU %s", ecu)
	}
	if downtime < 0 {
		return fmt.Errorf("rte: negative ECU reset downtime")
	}
	var comps []string
	for comp, e := range p.Sys.Mapping {
		if e == ecu {
			comps = append(comps, comp)
		}
	}
	sort.Strings(comps)
	var rebooting []string
	for _, swc := range comps {
		comp := p.Sys.Component(swc)
		for i := range comp.Runnables {
			name := swc + "." + comp.Runnables[i].Name
			task := p.tasks[name]
			cpu.Kill(task, "ecu-reset")
			if downtime > 0 && !task.Suspended() {
				cpu.SetSuspended(task, true)
				rebooting = append(rebooting, name)
			}
		}
		p.clearStore(swc)
	}
	p.DLT.Emitf(int64(p.K.Now()), obs.LevelWarn, "RTE", "RCVR",
		"ECU %s reset (%v downtime, %d tasks)", ecu, downtime, len(rebooting))
	// A reset is recoverable — unlike KillECU — so primaries hosted here
	// whose function failed over to a standby are demoted back once the
	// reboot window elapses. The candidates are fixed now; FailBack
	// re-validates each at fire time (the ECU may have been killed for
	// good during the downtime).
	demoted := p.demotedPrimaries(ecu)
	if len(rebooting)+len(demoted) > 0 {
		finish := func() {
			for _, name := range rebooting {
				cpu.SetSuspended(p.tasks[name], false)
			}
			p.restorePrimaries(ecu, demoted)
		}
		if downtime > 0 {
			p.K.After(downtime, finish)
		} else {
			finish()
		}
	}
	return nil
}

// demotedPrimaries lists the replicated primaries hosted on the ECU whose
// active instance is currently a standby, in sorted order.
func (p *Platform) demotedPrimaries(ecu string) []string {
	var out []string
	for primary, standbys := range p.replicas {
		if len(standbys) == 0 || p.Sys.Mapping[primary] != ecu {
			continue
		}
		if p.ActiveReplica(primary) != primary {
			out = append(out, primary)
		}
	}
	sort.Strings(out)
	return out
}

// restorePrimaries fails the listed primaries back after their ECU's
// reboot window. A dead ECU never restores — KillECU is permanent and
// its promotions must stick through any later ladder-driven reset.
func (p *Platform) restorePrimaries(ecu string, primaries []string) {
	if p.deadECU[ecu] {
		return
	}
	for _, primary := range primaries {
		if p.ActiveReplica(primary) == primary {
			continue
		}
		if err := p.FailBack(primary); err != nil {
			p.DLT.Emitf(int64(p.K.Now()), obs.LevelWarn, "RTE", "FBCK",
				"fail-back of %s after %s reset skipped: %v", primary, ecu, err)
		}
	}
}

// SetRunnableEnabled enables or disables a runnable's task. Disabled
// runnables shed every activation (each shed is an auditable Drop trace
// record) until re-enabled — the mechanism behind per-mode enable-sets in
// graceful degradation.
func (p *Platform) SetRunnableEnabled(swc, runnable string, enabled bool) error {
	name := swc + "." + runnable
	task := p.tasks[name]
	if task == nil {
		return fmt.Errorf("rte: no task %s to enable/disable", name)
	}
	p.cpus[p.Sys.Mapping[swc]].SetSuspended(task, !enabled)
	return nil
}

// RunnableEnabled reports whether the runnable's task currently accepts
// activations.
func (p *Platform) RunnableEnabled(swc, runnable string) bool {
	task := p.tasks[swc+"."+runnable]
	return task != nil && !task.Suspended()
}

// clearStore re-initializes every consumer-side buffer of one component to
// the never-written state.
func (p *Platform) clearStore(swc string) {
	prefix := swc + "/"
	for key, c := range p.store {
		if strings.HasPrefix(key, prefix) {
			*c = cell{}
		}
	}
}
