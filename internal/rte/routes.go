package rte

import (
	"fmt"
	"sort"

	"autorte/internal/can"
	"autorte/internal/com"
	"autorte/internal/e2eprot"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
	"autorte/internal/ttp"
	"autorte/internal/vfb"
)

// buildBuses instantiates one simulated channel per model bus.
func (p *Platform) buildBuses() error {
	for _, b := range p.Sys.Buses {
		switch b.Kind {
		case model.BusCAN:
			cfg := p.opts.CANConfig
			cfg.BitRate = b.BitRate
			bus, err := can.NewBus(p.K, b.Name, cfg, p.Trace)
			if err != nil {
				return err
			}
			p.canBus[b.Name] = bus
		case model.BusFlexRay:
			bus, err := flexray.NewBus(p.K, b.Name, p.opts.FlexRayConfig, p.Trace)
			if err != nil {
				return err
			}
			p.frBus[b.Name] = bus
		case model.BusTTP:
			a, err := newTTPAdapter(p, b.Name)
			if err != nil {
				return err
			}
			p.ttpBus[b.Name] = a
		}
	}
	return nil
}

// busSegment describes one hop of a signal over one bus: its identity on
// that bus, the transmitting ECU, timing metadata and the action at the
// receiving side. Direct routes are one segment; gatewayed routes are two
// chained segments (the second segment's send is the first's deliver).
type busSegment struct {
	signal  string
	bus     string
	sender  string // transmitting ECU
	srcSWC  string // producing component (criticality-based channel policy)
	dst     string // consuming component (E2E fault attribution)
	period  sim.Duration
	bits    int
	deliver func(float64)
}

// buildRoutes wires every resolved route: local routes deliver directly,
// remote routes get one frame per bus segment and deliver on reception.
func (p *Platform) buildRoutes() error {
	nextCANID := map[string]uint32{} // per-bus identifier counters
	frPending := map[string][]busSegment{}
	var frBuses []string

	wire := func(seg busSegment) (func(float64), error) {
		switch {
		case p.canBus[seg.bus] != nil:
			return p.wireCANSegment(seg, nextCANID)
		case p.frBus[seg.bus] != nil:
			if _, seen := frPending[seg.bus]; !seen {
				frBuses = append(frBuses, seg.bus)
			}
			frPending[seg.bus] = append(frPending[seg.bus], seg)
			// FlexRay send functions materialize after schedule synthesis;
			// hand out a trampoline resolved through the send table, which
			// wireFlexRay fills before the simulation starts.
			key := seg.bus + "/" + seg.signal
			return func(v float64) { p.frSend[key](v) }, nil
		case p.ttpBus[seg.bus] != nil:
			a := p.ttpBus[seg.bus]
			if err := a.addSegment(seg); err != nil {
				return nil, err
			}
			signal := seg.signal
			return func(v float64) { a.queue(signal, v) }, nil
		}
		return nil, fmt.Errorf("rte: segment %s references unknown bus %q", seg.signal, seg.bus)
	}

	for _, r := range p.routes {
		r := r
		deliver := p.makeDeliver(r)
		if r.Local {
			p.addBinding(r, binding{route: r, local: true, deliver: deliver})
			continue
		}
		srcSWC, _, dstSWC, dstPort := routeEndpoints(r)
		dstKey := storeKey(dstSWC, dstPort, r.Elem)
		if r.Via == "" {
			send, err := wire(busSegment{
				signal: r.SignalName, bus: r.Bus,
				sender: p.Sys.Mapping[srcSWC], srcSWC: srcSWC, dst: dstSWC,
				period: sim.Duration(r.Period), bits: r.Bits, deliver: deliver,
			})
			if err != nil {
				return err
			}
			if ch := p.e2eChans[r.SignalName]; ch != nil {
				p.e2eByDst[dstKey] = ch
			}
			p.addBinding(r, binding{route: r, send: send})
			continue
		}
		// Gatewayed route: wire the far segment first so the near
		// segment's reception can forward onto it (the PDU-router-as-
		// gateway of Figure 1, realized at the Via ECU).
		send2, err := wire(busSegment{
			signal: r.SignalName + "~2", bus: r.Bus2,
			sender: r.Via, srcSWC: srcSWC, dst: dstSWC,
			period: sim.Duration(r.Period), bits: r.Bits, deliver: deliver,
		})
		if err != nil {
			return err
		}
		send1, err := wire(busSegment{
			signal: r.SignalName + "~1", bus: r.Bus,
			sender: p.Sys.Mapping[srcSWC], srcSWC: srcSWC, dst: dstSWC,
			period: sim.Duration(r.Period), bits: r.Bits,
			deliver: func(v float64) { send2(v) },
		})
		if err != nil {
			return err
		}
		// The consumer-facing qualification state is the final hop's.
		if ch := p.e2eChans[r.SignalName+"~2"]; ch != nil {
			p.e2eByDst[dstKey] = ch
		}
		p.addBinding(r, binding{route: r, send: send1})
	}
	sort.Strings(frBuses)
	for _, busName := range frBuses {
		if err := p.wireFlexRay(busName, frPending[busName]); err != nil {
			return err
		}
	}
	return nil
}

// wireCANSegment creates the CAN message for one segment and returns its
// send function.
func (p *Platform) wireCANSegment(seg busSegment, nextID map[string]uint32) (func(float64), error) {
	bus := p.canBus[seg.bus]
	id := 0x100 + nextID[seg.bus]
	nextID[seg.bus]++
	pdu := signalPDU(seg.signal, seg.bits)
	e2e := p.protectSegment(seg, pdu, e2eprot.P01)
	msg := &can.Message{
		Name: seg.signal,
		ID:   id,
		DLC:  pdu.Length,
		// Periodic auto-queue stays off: the RTE queues payloads when
		// producers write. The producer period feeds deadline monitoring.
		Deadline: seg.period,
	}
	msg.SetSender(seg.sender)
	rx := p.receivePath(seg, pdu, e2e)
	signal := seg.signal
	msg.OnDeliver = func(_, _ sim.Time, payload []byte) {
		p.deliverRx(signal, payload, rx)
	}
	if err := bus.AddMessage(msg); err != nil {
		return nil, err
	}
	return func(v float64) {
		payload := pdu.Pack(map[string]float64{"v": v})
		if e2e != nil {
			_ = e2e.tx.Protect(payload) //autovet:allow errreport Protect only fails on a payload/offset mismatch, validated at build
		}
		bus.QueuePayload(msg, payload)
	}, nil
}

// wireFlexRay places the periodic segments of one bus into static slots,
// event segments into the dynamic segment, and fills the send table.
func (p *Platform) wireFlexRay(busName string, segs []busSegment) error {
	bus := p.frBus[busName]
	cfg := p.opts.FlexRayConfig
	var sigs []flexray.Signal
	segBySignal := map[string]busSegment{}
	var events []busSegment
	for _, seg := range segs {
		segBySignal[seg.signal] = seg
		if seg.period > 0 {
			sigs = append(sigs, flexray.Signal{Name: seg.signal, Period: seg.period})
		} else {
			events = append(events, seg)
		}
	}
	assignments, err := flexray.Synthesize(cfg, sigs)
	if err != nil {
		return fmt.Errorf("rte: bus %s: %w", busName, err)
	}
	install := func(seg busSegment, frame *flexray.Frame) error {
		pdu := signalPDU(seg.signal, seg.bits)
		e2e := p.protectSegment(seg, pdu, e2eprot.P05)
		if p.opts.DualChannelFlexRay {
			if c := p.Sys.Component(seg.srcSWC); c != nil && c.ASIL >= model.ASILC {
				frame.Channel = flexray.ChannelAB
			}
		}
		if e2e != nil {
			e2e.failover = frFailover(frame)
		}
		frame.SetSender(seg.sender)
		rx := p.receivePath(seg, pdu, e2e)
		signal := seg.signal
		frame.OnDeliver = func(_, _ sim.Time, payload []byte) {
			p.deliverRx(signal, payload, rx)
		}
		if err := bus.AddFrame(frame); err != nil {
			return err
		}
		p.frSend[busName+"/"+seg.signal] = func(v float64) {
			payload := pdu.Pack(map[string]float64{"v": v})
			if e2e != nil {
				_ = e2e.tx.Protect(payload) //autovet:allow errreport Protect only fails on a payload/offset mismatch, validated at build
			}
			bus.QueuePayload(frame, payload)
		}
		return nil
	}
	for _, a := range assignments {
		seg := segBySignal[a.Signal.Name]
		if err := install(seg, &flexray.Frame{
			Name: seg.signal, Kind: flexray.Static,
			SlotID: a.SlotID, Base: a.Base, Repetition: a.Repetition,
			Deadline: seg.period,
		}); err != nil {
			return err
		}
	}
	for i, seg := range events {
		payloadBytes := (seg.bits + 7) / 8
		if p.opts.E2E != nil {
			payloadBytes += e2eprot.P05.HeaderLen()
		}
		if err := install(seg, &flexray.Frame{
			Name: seg.signal, Kind: flexray.Dynamic,
			FrameID: cfg.StaticSlots + 1 + i,
			Length:  1 + payloadBytes/2, // rough words-per-minislot model
		}); err != nil {
			return err
		}
	}
	return nil
}

// signalPDU builds the single-signal COM PDU for a segment, sized to the
// element's declared width (raw integer transport, unit scale).
func signalPDU(name string, bits int) *com.IPdu {
	if bits < 1 {
		bits = 32
	}
	return &com.IPdu{
		Name: name, Length: (bits + 7) / 8, Mode: com.Direct,
		Signals: []com.Signal{{Name: "v", StartBit: 0, Bits: bits}},
	}
}

// routeEndpoints returns the producing and consuming endpoints of a
// route. Sender-receiver data flows provider -> requirer; client-server
// calls flow requirer -> provider.
func routeEndpoints(r vfb.Route) (srcSWC, srcPort, dstSWC, dstPort string) {
	if r.Elem == "__call__" {
		return r.Conn.ToSWC, r.Conn.ToPort, r.Conn.FromSWC, r.Conn.FromPort
	}
	return r.Conn.FromSWC, r.Conn.FromPort, r.Conn.ToSWC, r.Conn.ToPort
}

// addBinding registers a sink for the producing (swc, port, elem).
func (p *Platform) addBinding(r vfb.Route, b binding) {
	srcSWC, srcPort, _, _ := routeEndpoints(r)
	key := storeKey(srcSWC, srcPort, r.Elem)
	p.outgoing[key] = append(p.outgoing[key], b)
}

// makeDeliver returns the consumer-side delivery action for a route:
// store the value and activate data-received runnables.
func (p *Platform) makeDeliver(r vfb.Route) func(float64) {
	_, _, dstSWC, dstPort := routeEndpoints(r)
	key := storeKey(dstSWC, dstPort, r.Elem)
	// Replica fan-in: every route into the same consumer element — the
	// primary's and each standby's — must land in ONE cell, or reads
	// would follow whichever route registered last while the promoted
	// instance delivers into an orphan.
	c := p.store[key]
	if c == nil {
		c = &cell{}
		p.store[key] = c
	}
	comp := p.Sys.Component(dstSWC)
	ecu := p.Sys.Mapping[dstSWC]
	// Pre-compute the runnables triggered by this element's arrival.
	var triggered []string
	for i := range comp.Runnables {
		run := &comp.Runnables[i]
		if run.Trigger.Kind == model.DataReceivedEvent && run.Trigger.Port == dstPort &&
			(run.Trigger.Elem == r.Elem || run.Trigger.Elem == "") {
			triggered = append(triggered, comp.Name+"."+run.Name)
		}
		if run.Trigger.Kind == model.OperationInvokedEvent && run.Trigger.Port == dstPort && r.Elem == "__call__" {
			triggered = append(triggered, comp.Name+"."+run.Name)
		}
	}
	cpu := p.cpus[ecu]
	deliver := func(v float64) {
		c.value = v
		c.writtenAt = p.K.Now()
		c.written = true
		c.updates++
		for _, name := range triggered {
			cpu.Activate(p.tasks[name])
		}
	}
	srcSWC, _, _, _ := routeEndpoints(r)
	if !p.replicatedSource(srcSWC) {
		return deliver
	}
	// Replica fan-out gating: routes from every instance of a replica
	// group land on this consumer element, but only the active instance
	// may drive it. Inactive instances — hot standbys running at full
	// WCET and bus load, or a demoted primary — are suppressed HERE, at
	// the fan-in cell, so their compute and bus cost stays real while
	// their outputs go dark. The latest suppressed value is retained per
	// source: FailOver/FailBack flush it, turning a hot switchover into
	// an output unmute instead of a wait for the next production.
	suppressed := p.Metrics.Counter("rte_suppressed_deliveries_total",
		"Deliveries suppressed at the fan-in cell because the producing replica is not the active instance.",
		obs.Label{Key: "swc", Value: srcSWC})
	me := &mutedEntry{fn: deliver}
	if p.muted == nil {
		p.muted = map[string][]*mutedEntry{}
	}
	p.muted[srcSWC] = append(p.muted[srcSWC], me)
	return func(v float64) {
		// The replica index materializes after route wiring (Build order),
		// so the active pointer is consulted lazily per delivery.
		primary, ok := p.primaryOf[srcSWC]
		if !ok || p.ActiveReplica(primary) == srcSWC {
			if ok {
				p.noteSwitchDelivery(primary)
			}
			deliver(v)
			return
		}
		me.value, me.has = v, true
		suppressed.Inc()
	}
}

// execute runs a runnable's behaviour at job completion and publishes
// every written element.
func (p *Platform) execute(comp *model.SWC, run *model.Runnable, job int64) {
	ctx := &Context{p: p, comp: comp, run: run, job: job}
	if b := p.behavior[comp.Name+"."+run.Name]; b != nil {
		b(ctx)
		return
	}
	// Default behaviour: republish the declared writes with the latest
	// read input (or the job index when there are no inputs), so trigger
	// chains propagate without user code.
	v := float64(job)
	if len(run.Reads) > 0 {
		if rv, ok := ctx.ReadOK(run.Reads[0].Port, run.Reads[0].Elem); ok {
			v = rv
		}
	}
	for _, w := range run.Writes {
		//autovet:allow e2eflow infrastructure default republish: protected routes deliver only verified frames, and qualification is the duty of a real behavior
		ctx.Write(w.Port, w.Elem, v)
	}
}

// ttpAdapter maps an ECU-per-node TTP cluster under the RTE: values queued
// by a node's components are delivered to consumers at the node's next
// successful slot.
type ttpAdapter struct {
	p       *Platform
	cluster *ttp.Cluster
	nodes   map[string]*ttp.Node // by ECU name
	pending map[string][]pendingValue
	sinks   map[string][]func(float64)
	byECU   map[string][]string // signal names sent by each ECU
}

type pendingValue struct {
	signal string
	value  float64
}

func newTTPAdapter(p *Platform, busName string) (*ttpAdapter, error) {
	cluster, err := ttp.NewCluster(p.K, ttp.Config{
		SlotLength: p.opts.TTPSlotLength, RoundsPerCluster: 2, SyncEnabled: true,
	}, p.Trace)
	if err != nil {
		return nil, err
	}
	a := &ttpAdapter{
		p: p, cluster: cluster,
		nodes:   map[string]*ttp.Node{},
		pending: map[string][]pendingValue{},
		sinks:   map[string][]func(float64){},
		byECU:   map[string][]string{},
	}
	var ecus []string
	for _, e := range p.Sys.ECUs {
		for _, b := range e.Buses {
			if b == busName {
				ecus = append(ecus, e.Name)
			}
		}
	}
	sort.Strings(ecus)
	for _, ecu := range ecus {
		ecu := ecu
		n := &ttp.Node{Name: ecu, Guardian: true}
		n.OnTransmit = func(sim.Time) { a.flush(ecu) }
		if err := cluster.AddNode(n); err != nil {
			return nil, err
		}
		a.nodes[ecu] = n
	}
	return a, nil
}

// addSegment registers one signal segment: its sender node carries the
// value at that node's next slot.
func (a *ttpAdapter) addSegment(seg busSegment) error {
	if _, ok := a.nodes[seg.sender]; !ok {
		return fmt.Errorf("rte: TTP bus has no node for ECU %q", seg.sender)
	}
	a.sinks[seg.signal] = append(a.sinks[seg.signal], seg.deliver)
	a.byECU[seg.sender] = append(a.byECU[seg.sender], seg.signal)
	return nil
}

func (a *ttpAdapter) queue(signal string, v float64) {
	// Find the sending ECU for accounting; state semantics: last value
	// per signal wins within a slot.
	for ecu, sigs := range a.byECU {
		for _, s := range sigs {
			if s == signal {
				pend := a.pending[ecu]
				for i := range pend {
					if pend[i].signal == signal {
						pend[i].value = v
						return
					}
				}
				a.pending[ecu] = append(pend, pendingValue{signal: signal, value: v})
				return
			}
		}
	}
}

func (a *ttpAdapter) flush(ecu string) {
	pend := a.pending[ecu]
	a.pending[ecu] = nil
	for _, pv := range pend {
		for _, sink := range a.sinks[pv.signal] {
			sink(pv.value)
		}
	}
}

func (a *ttpAdapter) start() {
	if len(a.cluster.Nodes()) >= 2 {
		if err := a.cluster.Start(); err != nil {
			panic(err)
		}
	}
}
