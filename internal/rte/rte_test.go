package rte

import (
	"fmt"
	"testing"

	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/protection"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// chainSystem builds sensor -> controller -> actuator with the sensor and
// actuator on ecu1 and the controller on ecu2, over the given bus kind.
func chainSystem(busKind model.BusKind) *model.System {
	ifSpeed := &model.PortInterface{
		Name: "IfSpeed", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	ifCmd := &model.PortInterface{
		Name: "IfCmd", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
	}
	sensor := &model.SWC{
		Name: "Sensor", Supplier: "tier1a", DAS: "chassis",
		Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifSpeed}},
		Runnables: []model.Runnable{{
			Name: "sample", WCETNominal: sim.US(50),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
			Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
		}},
	}
	ctrl := &model.SWC{
		Name: "Ctrl", Supplier: "tier1b", DAS: "chassis",
		Ports: []model.Port{
			{Name: "in", Direction: model.Required, Interface: ifSpeed},
			{Name: "cmd", Direction: model.Provided, Interface: ifCmd},
		},
		Runnables: []model.Runnable{{
			Name: "law", WCETNominal: sim.US(200),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
			Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
		}},
	}
	act := &model.SWC{
		Name: "Act", Supplier: "tier1a", DAS: "chassis",
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifCmd}},
		Runnables: []model.Runnable{{
			Name: "apply", WCETNominal: sim.US(80),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
			Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
		}},
	}
	return &model.System{
		Name:       "chain",
		Interfaces: []*model.PortInterface{ifSpeed, ifCmd},
		Components: []*model.SWC{sensor, ctrl, act},
		ECUs: []*model.ECU{
			{Name: "ecu1", Speed: 1, Buses: []string{"bus0"}},
			{Name: "ecu2", Speed: 1, Buses: []string{"bus0"}},
		},
		Buses: []*model.Bus{{Name: "bus0", Kind: busKind, BitRate: 500_000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
		},
		Mapping: map[string]string{"Sensor": "ecu1", "Ctrl": "ecu2", "Act": "ecu1"},
	}
}

func TestBuildValidations(t *testing.T) {
	s := chainSystem(model.BusCAN)
	delete(s.Mapping, "Act")
	if _, err := Build(s, Options{}); err == nil {
		t.Fatal("unmapped component accepted")
	}
	s = chainSystem(model.BusCAN)
	s.Connectors = s.Connectors[:1]
	if _, err := Build(s, Options{}); err == nil {
		t.Fatal("unconnected R-port accepted")
	}
}

func TestDistributedChainOverCAN(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	var applied int
	var lastU float64
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", float64(c.Job())) })
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", c.Read("in", "v")*2) })
	p.SetBehavior("Act", "apply", func(c *Context) { applied++; lastU = c.Read("in", "u") })
	p.Run(sim.MS(95))
	if applied != 10 {
		t.Fatalf("actuator ran %d times, want 10 (one per sensor period)", applied)
	}
	// Job 9 value: 9 * 2 = 18.
	if lastU != 18 {
		t.Fatalf("last command %v, want 18", lastU)
	}
	// The chain crossed the bus twice (Sensor->Ctrl, Ctrl->Act).
	if p.Trace.Count(trace.Finish, "Sensor.out.v->Ctrl.in") != 10 {
		t.Fatal("forward frames not transmitted")
	}
	if p.Trace.Count(trace.Finish, "Ctrl.cmd.u->Act.in") != 10 {
		t.Fatal("return frames not transmitted")
	}
}

func TestDistributedChainOverFlexRay(t *testing.T) {
	s := chainSystem(model.BusFlexRay)
	p := MustBuild(s, Options{})
	var applied int
	p.SetBehavior("Act", "apply", func(c *Context) { applied++ })
	p.Run(sim.MS(95))
	if applied < 8 {
		t.Fatalf("actuator ran %d times over FlexRay, want ~10", applied)
	}
}

func TestDistributedChainOverTTP(t *testing.T) {
	s := chainSystem(model.BusTTP)
	p := MustBuild(s, Options{})
	if p.TTPCluster("bus0") == nil {
		t.Fatal("TTP cluster not built")
	}
	var applied int
	p.SetBehavior("Act", "apply", func(c *Context) { applied++ })
	p.Run(sim.MS(95))
	if applied < 8 {
		t.Fatalf("actuator ran %d times over TTP, want ~10", applied)
	}
}

func TestLocalChainWhenColocated(t *testing.T) {
	s := chainSystem(model.BusCAN)
	s.Mapping["Ctrl"] = "ecu1" // everything local now
	p := MustBuild(s, Options{})
	var applied int
	p.SetBehavior("Act", "apply", func(c *Context) { applied++ })
	p.Run(sim.MS(95))
	if applied != 10 {
		t.Fatalf("local chain ran %d times, want 10", applied)
	}
	// No frames at all on the bus.
	if p.Trace.Count(trace.Finish, "Sensor.out.v->Ctrl.in") != 0 {
		t.Fatal("co-located chain produced bus traffic")
	}
}

func TestLocationTransparency(t *testing.T) {
	// The same behaviours produce the same values whether the controller
	// is local or remote — only latency may differ (§2 transferability).
	run := func(ctrlECU string) float64 {
		s := chainSystem(model.BusCAN)
		s.Mapping["Ctrl"] = ctrlECU
		p := MustBuild(s, Options{})
		var last float64
		p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", 21) })
		p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", c.Read("in", "v")+1) })
		p.SetBehavior("Act", "apply", func(c *Context) { last = c.Read("in", "u") })
		p.Run(sim.MS(50))
		return last
	}
	if local, remote := run("ecu1"), run("ecu2"); local != remote || local != 22 {
		t.Fatalf("location changed semantics: local %v, remote %v", local, remote)
	}
}

func TestChainLatencyLocalVsRemote(t *testing.T) {
	lat := func(ctrlECU string) sim.Duration {
		s := chainSystem(model.BusCAN)
		s.Mapping["Ctrl"] = ctrlECU
		p := MustBuild(s, Options{})
		var worst sim.Duration
		var produced sim.Time
		p.SetBehavior("Sensor", "sample", func(c *Context) {
			produced = c.Now()
			c.Write("out", "v", 1)
		})
		p.SetBehavior("Act", "apply", func(c *Context) {
			if d := c.Now() - produced; d > worst {
				worst = d
			}
		})
		p.Run(sim.MS(100))
		return worst
	}
	local, remote := lat("ecu1"), lat("ecu2")
	if local == 0 || remote == 0 {
		t.Fatal("chain did not complete")
	}
	if remote <= local {
		t.Fatalf("remote chain latency %v not above local %v", remote, local)
	}
}

func TestBudgetEnforcementOption(t *testing.T) {
	s := chainSystem(model.BusCAN)
	// The sensor claims 50us but actually runs 5ms, starving ecu1.
	p := MustBuild(s, Options{EnforceBudgets: true})
	p.Task("Sensor", "sample").Demand = func(int64) sim.Duration { return sim.MS(5) }
	p.Run(sim.MS(100))
	if p.Stats("Sensor.sample").AbortCount == 0 {
		t.Fatal("overrunning runnable not aborted despite budgets")
	}
	// The actuator on the same ECU is still schedulable... it only runs
	// when frames arrive, and the sensor never produces (aborted), so
	// check the CPU itself stayed responsive via utilization bound.
	if u := p.CPU("ecu1").Utilization(); u > 0.2 {
		t.Fatalf("ecu1 utilization %v; budget enforcement failed to cap the overrun", u)
	}
}

func TestIsolationOptionsBuild(t *testing.T) {
	for _, iso := range []IsolationKind{ServerPerSupplier, TablePerSupplier} {
		s := chainSystem(model.BusCAN)
		p, err := Build(s, Options{Isolation: iso, ServerKind: protection.Deferrable})
		if err != nil {
			t.Fatalf("isolation %v: %v", iso, err)
		}
		var applied int
		p.SetBehavior("Act", "apply", func(c *Context) { applied++ })
		p.Run(sim.MS(100))
		if applied == 0 {
			t.Fatalf("isolation %v: chain dead", iso)
		}
	}
}

func TestErrorManagerReportAndSubscribe(t *testing.T) {
	s := chainSystem(model.BusCAN)
	// Add a diagnostic component subscribing to sensor errors.
	ifDiag := &model.PortInterface{
		Name: "IfDiag", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "x", Type: model.UInt8}},
	}
	s.Interfaces = append(s.Interfaces, ifDiag)
	s.Components = append(s.Components, &model.SWC{
		Name: "Diag", Supplier: "oem",
		Runnables: []model.Runnable{{
			Name: "onSensorFault", WCETNominal: sim.US(20),
			Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "sensor"},
		}},
	})
	s.Mapping["Diag"] = "ecu2"
	p := MustBuild(s, Options{})
	var handled int
	p.SetBehavior("Diag", "onSensorFault", func(c *Context) { handled++ })
	p.SetBehavior("Sensor", "sample", func(c *Context) {
		if c.Job() == 3 {
			c.Report(ErrSensor, "implausible reading")
		}
		c.Write("out", "v", 1)
	})
	p.Run(sim.MS(95))
	if handled != 1 {
		t.Fatalf("error handler ran %d times, want 1", handled)
	}
	if p.Errors.CountKind(ErrSensor) != 1 {
		t.Fatal("error not recorded")
	}
	if len(p.Errors.Records()) != 1 || p.Errors.Records()[0].Source != "Sensor" {
		t.Fatalf("bad records: %+v", p.Errors.Records())
	}
}

func TestClientServerInvocation(t *testing.T) {
	ifSrv := &model.PortInterface{
		Name: "IfApply", Kind: model.ClientServer,
		Operations: []model.Operation{{Name: "Apply"}},
	}
	server := &model.SWC{
		Name:  "BrakeServer",
		Ports: []model.Port{{Name: "srv", Direction: model.Provided, Interface: ifSrv}},
		Runnables: []model.Runnable{{
			Name: "serve", WCETNominal: sim.US(100),
			Trigger: model.Trigger{Kind: model.OperationInvokedEvent, Port: "srv", Elem: "Apply"},
		}},
	}
	client := &model.SWC{
		Name:  "Pedal",
		Ports: []model.Port{{Name: "call", Direction: model.Required, Interface: ifSrv}},
		Runnables: []model.Runnable{{
			Name: "poll", WCETNominal: sim.US(30),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(20)},
		}},
	}
	s := &model.System{
		Name:       "cs",
		Interfaces: []*model.PortInterface{ifSrv},
		Components: []*model.SWC{server, client},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
		},
		Buses:      []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500_000}},
		Connectors: []model.Connector{{FromSWC: "BrakeServer", FromPort: "srv", ToSWC: "Pedal", ToPort: "call"}},
		Mapping:    map[string]string{"BrakeServer": "e1", "Pedal": "e2"},
	}
	p := MustBuild(s, Options{})
	var served int
	p.SetBehavior("BrakeServer", "serve", func(c *Context) { served++ })
	p.SetBehavior("Pedal", "poll", func(c *Context) { c.Invoke("call") })
	p.Run(sim.MS(95))
	if served != 5 {
		t.Fatalf("server ran %d times, want 5 (calls at 0,20,..,80)", served)
	}
}

func TestValueAndAge(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", 42) })
	var sawAge sim.Duration = -1
	p.SetBehavior("Ctrl", "law", func(c *Context) {
		sawAge = c.Age("in", "v")
		c.Write("cmd", "u", c.Read("in", "v"))
	})
	p.Run(sim.MS(50))
	if v, ok := p.Value("Ctrl", "in", "v"); !ok || v != 42 {
		t.Fatalf("Value = (%v,%v), want (42,true)", v, ok)
	}
	if sawAge < 0 {
		t.Fatal("age not observed")
	}
	if _, ok := p.Value("Ctrl", "in", "ghost"); ok {
		t.Fatal("unknown element has a value")
	}
}

func TestDefaultBehaviorPropagatesChain(t *testing.T) {
	// Without any registered behaviours, default behaviours must still
	// drive the trigger chain end to end.
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.Run(sim.MS(95))
	if p.Stats("Act.apply").N == 0 {
		t.Fatal("default behaviours did not propagate the chain")
	}
}

func TestStatsExposesTaskResponse(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.Run(sim.MS(95))
	st := p.Stats("Sensor.sample")
	if st.N != 10 || st.Max < sim.US(50) {
		t.Fatalf("sensor stats %+v", st)
	}
}

func TestSetBehaviorValidation(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	if err := p.SetBehavior("Ghost", "x", nil); err == nil {
		t.Fatal("unknown component accepted")
	}
	if err := p.SetBehavior("Sensor", "ghost", nil); err == nil {
		t.Fatal("unknown runnable accepted")
	}
}

func TestSwitchModeActivatesSubscribers(t *testing.T) {
	s := chainSystem(model.BusCAN)
	// A mode-dependent component: one handler for "limp-home".
	s.Components = append(s.Components, &model.SWC{
		Name: "ModeCtl", Supplier: "oem",
		Runnables: []model.Runnable{{
			Name: "onLimpHome", WCETNominal: sim.US(10),
			Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "limp-home"},
		}},
	})
	s.Mapping["ModeCtl"] = "ecu1"
	p := MustBuild(s, Options{})
	var entered int
	p.SetBehavior("ModeCtl", "onLimpHome", func(c *Context) { entered++ })
	// Behaviours can switch modes; so can the harness.
	p.SetBehavior("Sensor", "sample", func(c *Context) {
		if c.Job() == 2 {
			p.SwitchMode("limp-home")
		}
		c.Write("out", "v", 1)
	})
	p.K.At(sim.MS(55), func() { p.SwitchMode("limp-home") })
	p.K.At(sim.MS(60), func() { p.SwitchMode("unknown-mode") }) // no subscribers: no-op
	p.Run(sim.MS(100))
	if entered != 2 {
		t.Fatalf("mode handler ran %d times, want 2", entered)
	}
}

func TestBudgetAbortReportsTimingError(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{EnforceBudgets: true})
	p.Task("Sensor", "sample").Demand = func(int64) sim.Duration { return sim.MS(5) }
	p.Run(sim.MS(50))
	if p.Errors.CountKind(ErrTiming) == 0 {
		t.Fatal("budget exhaustion did not reach the error path")
	}
}

func TestAliveSupervisionDetectsStall(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	// Supervise the data-triggered controller. The sensor stops writing
	// during [40ms, 120ms): the controller starves and the watchdog
	// reports one timing error; a second stall from 160ms produces
	// exactly one more.
	if err := p.Supervise("Ctrl", "law", sim.MS(30)); err != nil {
		t.Fatal(err)
	}
	p.SetBehavior("Sensor", "sample", func(c *Context) {
		now := c.Now()
		if (now >= sim.MS(40) && now < sim.MS(120)) || now >= sim.MS(160) {
			return // sensor silent
		}
		c.Write("out", "v", 1)
	})
	p.Run(sim.MS(260))
	if got := p.Errors.CountKind(ErrTiming); got != 2 {
		for _, r := range p.Errors.Records() {
			t.Logf("error at %v: %s %s", sim.Time(r.At), r.Kind, r.Info)
		}
		t.Fatalf("supervision reported %d timing errors, want 2 (one per stall)", got)
	}
}

func TestSuperviseValidation(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	if p.Supervise("Ghost", "x", sim.MS(10)) == nil {
		t.Fatal("unknown task supervised")
	}
	if p.Supervise("Sensor", "sample", 0) == nil {
		t.Fatal("zero window accepted")
	}
}

func TestDTCAggregation(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.K.At(sim.MS(10), func() { p.Errors.Report("Sensor", ErrSensor, "first") })
	p.K.At(sim.MS(20), func() { p.Errors.Report("Sensor", ErrSensor, "again") })
	p.K.At(sim.MS(30), func() { p.Errors.Report("Ctrl", ErrComm, "lost frame") })
	p.Run(sim.MS(50))
	dtcs := p.Errors.DTCs()
	if len(dtcs) != 2 {
		t.Fatalf("DTCs = %d, want 2", len(dtcs))
	}
	first := dtcs[0]
	if first.Source != "Sensor" || first.Occurrences != 2 || first.LastInfo != "again" {
		t.Fatalf("sensor DTC wrong: %+v", first)
	}
	if first.FirstAt != int64(sim.MS(10)) || first.LastAt != int64(sim.MS(20)) {
		t.Fatalf("freeze frames wrong: %+v", first)
	}
	if dtcs[1].Kind != ErrComm || dtcs[1].Occurrences != 1 {
		t.Fatalf("comm DTC wrong: %+v", dtcs[1])
	}
}

func TestGatewayedChainOverTwoBuses(t *testing.T) {
	// Sensor on a CAN domain bus, controller on a FlexRay domain bus,
	// joined by a gateway ECU — the Gateway box of Figure 1 end to end.
	s := chainSystem(model.BusCAN)
	s.Buses = append(s.Buses, &model.Bus{Name: "bus1", Kind: model.BusFlexRay, BitRate: 10_000_000})
	s.ECUs[0].Buses = []string{"bus0"}
	s.ECUs[1].Buses = []string{"bus1"}
	s.ECUs = append(s.ECUs, &model.ECU{Name: "gw", Speed: 1, Buses: []string{"bus0", "bus1"}})
	p := MustBuild(s, Options{})
	var applied int
	var lastU float64
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", 7) })
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", c.Read("in", "v")*3) })
	p.SetBehavior("Act", "apply", func(c *Context) { applied++; lastU = c.Read("in", "u") })
	p.Run(sim.MS(195))
	if applied < 15 {
		t.Fatalf("gatewayed chain ran %d times, want ~19", applied)
	}
	if lastU != 21 {
		t.Fatalf("value through gateway = %v, want 21", lastU)
	}
	// Both segments transmitted on their buses.
	if p.Trace.Count(trace.Finish, "Sensor.out.v->Ctrl.in~1") == 0 {
		t.Fatal("first segment never transmitted")
	}
	if p.Trace.Count(trace.Finish, "Sensor.out.v->Ctrl.in~2") == 0 {
		t.Fatal("second segment never transmitted")
	}
}

func TestDualChannelFlexRayOption(t *testing.T) {
	s := chainSystem(model.BusFlexRay)
	// Make the sensor ASIL-D so its frames go dual-channel.
	s.Component("Sensor").ASIL = model.ASILD
	p := MustBuild(s, Options{DualChannelFlexRay: true})
	var applied int
	p.SetBehavior("Act", "apply", func(c *Context) { applied++ })
	// Kill channel A mid-run: the ASIL-D stream must keep flowing on B.
	p.FlexRayBus("bus0").FailChannel(flexray.ChannelA, sim.MS(40))
	p.Run(sim.MS(95))
	// Sensor->Ctrl survives on channel B; Ctrl (QM, channel A only)
	// stops, so the actuator saw roughly the pre-failure applications.
	finWire := p.Trace.Count(trace.Finish, "Sensor.out.v->Ctrl.in")
	if finWire < 9 {
		t.Fatalf("ASIL-D dual-channel stream lost frames: %d", finWire)
	}
	ctrlWire := p.Trace.Count(trace.Finish, "Ctrl.cmd.u->Act.in")
	if ctrlWire >= 9 {
		t.Fatalf("QM single-channel stream unaffected by channel loss: %d", ctrlWire)
	}
	_ = applied
}

func TestErrorRecordRingBounded(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{ErrorRecordCap: 8})
	for i := 0; i < 20; i++ {
		i := i
		p.K.At(sim.MS(float64(i)), func() {
			p.Errors.Report("Sensor", ErrSensor, fmt.Sprintf("glitch %d", i))
		})
	}
	p.K.At(sim.MS(25), func() { p.Errors.Report("Ctrl", ErrComm, "lost") })
	p.Run(sim.MS(50))
	recs := p.Errors.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	// Chronological order preserved across the wrap; newest report last.
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatalf("records out of order: %+v", recs)
		}
	}
	if recs[7].Kind != ErrComm {
		t.Fatalf("last record %+v, want the comm error", recs[7])
	}
	// Aggregates stay exact despite the dropped freeze frames.
	if p.Errors.Total() != 21 {
		t.Fatalf("total = %d, want 21", p.Errors.Total())
	}
	if p.Errors.CountKind(ErrSensor) != 20 {
		t.Fatalf("sensor count = %d, want 20", p.Errors.CountKind(ErrSensor))
	}
	dtcs := p.Errors.DTCs()
	if len(dtcs) != 2 || dtcs[0].Occurrences != 20 || dtcs[0].FirstAt != int64(sim.MS(0)) {
		t.Fatalf("DTC aggregation lost history: %+v", dtcs)
	}
	if dtcs[0].LastInfo != "glitch 19" {
		t.Fatalf("freeze frame wrong: %+v", dtcs[0])
	}
}

func TestErrorManagerOnReportHook(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	var seen []ErrorRecord
	p.Errors.OnReport = func(r ErrorRecord) { seen = append(seen, r) }
	p.K.At(sim.MS(10), func() { p.Errors.Report("Sensor", ErrSensor, "x") })
	p.Run(sim.MS(20))
	if len(seen) != 1 || seen[0].Source != "Sensor" || seen[0].At != int64(sim.MS(10)) {
		t.Fatalf("hook saw %+v", seen)
	}
}

func TestRestartRunnableKillsJobAndRecovers(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	// Make the sensor's 3rd job hang (huge demand); restart it at 35ms.
	p.Task("Sensor", "sample").Demand = func(job int64) sim.Duration {
		if job == 2 {
			return sim.Second
		}
		return sim.US(50)
	}
	p.K.At(sim.MS(35), func() {
		if err := p.RestartRunnable("Sensor", "sample"); err != nil {
			t.Error(err)
		}
	})
	p.Run(sim.MS(95))
	// Jobs 0,1 finish; job 2 killed; releases from 40ms on run again.
	if got := p.Trace.Count(trace.Finish, "Sensor.sample"); got < 7 {
		t.Fatalf("sensor finished %d jobs after restart, want >=7", got)
	}
	if p.Trace.Count(trace.Abort, "Sensor.sample") != 1 {
		t.Fatal("hung job not killed")
	}
	if err := p.RestartRunnable("Ghost", "x"); err == nil {
		t.Fatal("unknown runnable restarted")
	}
}

func TestRestartComponentClearsPortState(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.SetBehavior("Sensor", "sample", func(c *Context) {
		if c.Now() < sim.MS(30) {
			c.Write("out", "v", 42)
		}
	})
	p.K.At(sim.MS(50), func() {
		if _, ok := p.Value("Ctrl", "in", "v"); !ok {
			t.Error("controller never received pre-restart value")
		}
		if err := p.RestartComponent("Ctrl"); err != nil {
			t.Error(err)
		}
		if _, ok := p.Value("Ctrl", "in", "v"); ok {
			t.Error("partition restart kept stale port state")
		}
	})
	p.Run(sim.MS(95))
	if err := p.RestartComponent("Ghost"); err == nil {
		t.Fatal("unknown component restarted")
	}
}

func TestResetECUDowntimeAndResume(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.K.At(sim.MS(32), func() {
		if err := p.ResetECU("ecu1", sim.MS(30)); err != nil {
			t.Error(err)
		}
	})
	p.Run(sim.MS(95))
	// Sensor releases at 0..30 run (4 jobs); 40,50,60 shed during the
	// reboot window [32ms, 62ms); 70,80,90 run again.
	if got := p.Trace.Count(trace.Finish, "Sensor.sample"); got != 7 {
		t.Fatalf("sensor finished %d jobs across ECU reset, want 7", got)
	}
	if got := p.Trace.Count(trace.Drop, "Sensor.sample"); got != 3 {
		t.Fatalf("reboot window shed %d activations, want 3", got)
	}
	if !p.RunnableEnabled("Sensor", "sample") {
		t.Fatal("task still suspended after downtime")
	}
	if err := p.ResetECU("ghost", 0); err == nil {
		t.Fatal("unknown ECU reset")
	}
	if err := p.ResetECU("ecu1", -1); err == nil {
		t.Fatal("negative downtime accepted")
	}
}

func TestSetRunnableEnabledSheds(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	p.K.At(sim.MS(15), func() {
		if err := p.SetRunnableEnabled("Sensor", "sample", false); err != nil {
			t.Error(err)
		}
	})
	p.K.At(sim.MS(55), func() {
		if err := p.SetRunnableEnabled("Sensor", "sample", true); err != nil {
			t.Error(err)
		}
	})
	p.Run(sim.MS(95))
	if got := p.Trace.Count(trace.Finish, "Sensor.sample"); got != 6 {
		t.Fatalf("finished %d jobs, want 6 (2 before shed, 4 after resume)", got)
	}
	if got := p.Trace.Count(trace.Drop, "Sensor.sample"); got != 4 {
		t.Fatalf("shed %d activations, want 4", got)
	}
	if err := p.SetRunnableEnabled("Ghost", "x", false); err == nil {
		t.Fatal("unknown runnable disabled")
	}
}

func TestMustBehaviorPanicsOnUnknownRunnable(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("MustBehavior accepted an unknown runnable")
		}
	}()
	p.MustBehavior("Sensor", "ghost", func(c *Context) {})
}

func TestMustBehaviorInstallsValidBehavior(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	ran := 0
	p.MustBehavior("Sensor", "sample", func(c *Context) { ran++ })
	p.Run(sim.MS(50))
	if ran == 0 {
		t.Fatal("behavior installed via MustBehavior never ran")
	}
}
