package rte

import (
	"testing"

	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// replicatedChain materializes a passive standby for the chain's
// controller on a third ECU, through deploy.Replicate — the same path the
// availability campaign (E13) deploys with.
func replicatedChain(t *testing.T) *model.System {
	t.Helper()
	s := chainSystem(model.BusCAN)
	s.ECUs = append(s.ECUs, &model.ECU{Name: "ecu3", Speed: 1, Buses: []string{"bus0"}})
	s.Component("Ctrl").Redundancy = model.Redundancy{Replicas: 2, Mode: model.StandbyPassive}
	out, err := deploy.Replicate(s)
	if err != nil {
		t.Fatal(err)
	}
	out.Mapping["Ctrl#1"] = "ecu3"
	return out
}

// A passive standby stays suspended until FailOver promotes it; the
// switch moves the active pointer, meters deploy_failovers_total and
// leaves a Recover trace, and the demoted primary stops running.
func TestPassiveStandbyFailOver(t *testing.T) {
	p := MustBuild(replicatedChain(t), Options{})
	runs := map[string]int{}
	law := func(name string) Behavior {
		return func(c *Context) {
			runs[name]++
			c.Write("cmd", "u", c.Read("in", "v")+1)
		}
	}
	if err := p.SetBehavior("Ctrl", "law", law("Ctrl")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBehavior("Ctrl#1", "law", law("Ctrl#1")); err != nil {
		t.Fatal(err)
	}
	var applied int
	var lastCmd float64
	p.SetBehavior("Act", "apply", func(c *Context) { applied++; lastCmd = c.Read("in", "u") })

	if got := p.ActiveReplica("Ctrl"); got != "Ctrl" {
		t.Fatalf("active replica %q before any fail-over", got)
	}
	if !p.HasStandby("Ctrl") {
		t.Fatal("standby on a live third ECU not seen")
	}
	p.K.At(sim.MS(50), func() {
		if err := p.FailOver("Ctrl"); err != nil {
			t.Errorf("failover: %v", err)
		}
	})
	p.Run(sim.MS(95))

	if runs["Ctrl#1"] == 0 {
		t.Fatal("promoted standby never ran")
	}
	if runs["Ctrl"] > 6 {
		t.Fatalf("demoted primary kept running: %d jobs", runs["Ctrl"])
	}
	if applied < 9 {
		t.Fatalf("actuator applied %d commands across the switch, want >= 9", applied)
	}
	if got := p.ActiveReplica("Ctrl"); got != "Ctrl#1" {
		t.Fatalf("active replica %q after fail-over, want Ctrl#1", got)
	}
	// The actuator must read FRESH values through the promoted standby's
	// route, not a stale cell of the demoted primary's: the sensor's default
	// behavior publishes the job index, so the last command tracks time.
	if lastCmd < 7 {
		t.Fatalf("last command %v reflects a stale pre-failover value", lastCmd)
	}
	if n := p.Metrics.Counter("deploy_failovers_total", "",
		obs.Label{Key: "swc", Value: "Ctrl"}).Value(); n != 1 {
		t.Fatalf("deploy_failovers_total = %d, want 1", n)
	}
	if p.Trace.Count(trace.Recover, "Ctrl") == 0 {
		t.Fatal("fail-over left no Recover trace record")
	}
}

// KillECU is permanent: the dead ECU's tasks stay shed through a later
// escalation-style ECU reset, and a manual fail-over restores the chain.
func TestKillECUSticksAndFailOverRecovers(t *testing.T) {
	p := MustBuild(replicatedChain(t), Options{})
	var applied int
	p.SetBehavior("Act", "apply", func(c *Context) { applied++ })
	p.K.At(sim.MS(45), func() {
		if err := p.KillECU("ecu2"); err != nil {
			t.Errorf("kill: %v", err)
		}
		if err := p.KillECU("ecu2"); err == nil {
			t.Error("double kill accepted")
		}
		if err := p.FailOver("Ctrl"); err != nil {
			t.Errorf("failover off the dead ECU: %v", err)
		}
	})
	// The ladder's ECU-reset rung may fire on a dead ECU: nothing it did
	// not suspend itself may come back.
	p.K.At(sim.MS(60), func() {
		if err := p.ResetECU("ecu2", sim.MS(5)); err != nil {
			t.Errorf("reset: %v", err)
		}
	})
	p.Run(sim.MS(95))
	if !p.ECUDead("ecu2") {
		t.Fatal("killed ECU reported alive")
	}
	if n := p.Trace.Count(trace.Finish, "Ctrl.law"); n > 5 {
		t.Fatalf("dead primary finished %d jobs after the kill, want <= 5", n)
	}
	if p.Trace.Count(trace.Finish, "Ctrl#1.law") == 0 {
		t.Fatal("promoted standby never ran after the kill")
	}
	if applied < 9 {
		t.Fatalf("actuator applied %d commands across the kill, want >= 9", applied)
	}
}

func TestFailOverErrors(t *testing.T) {
	// Without standbys the fail-over must refuse, not guess.
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	if p.HasStandby("Ctrl") {
		t.Fatal("unreplicated component claims a standby")
	}
	if err := p.FailOver("Ctrl"); err == nil {
		t.Fatal("no-standby failover accepted")
	}
	// With the last standby's ECU dead there is nothing live to promote.
	p2 := MustBuild(replicatedChain(t), Options{})
	p2.K.At(sim.MS(5), func() {
		if err := p2.KillECU("ecu3"); err != nil {
			t.Errorf("kill: %v", err)
		}
		if p2.HasStandby("Ctrl") {
			t.Error("dead standby still offered")
		}
		if err := p2.FailOver("Ctrl"); err == nil {
			t.Error("failover onto a dead ECU accepted")
		}
	})
	p2.Run(sim.MS(10))
	if err := p2.KillECU("no-such-ecu"); err == nil {
		t.Fatal("kill of unknown ECU accepted")
	}
}
