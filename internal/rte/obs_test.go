package rte

import (
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
)

// TestPlatformMetricsAndDLT runs a platform with the event log attached
// and checks the observability wiring end to end: the error manager
// increments per-kind counters and logs to DLT, the kernel's executed
// events surface as a pull counter, and the Prometheus export carries
// all of it.
func TestPlatformMetricsAndDLT(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	dlt := p.EnableDLT(obs.LevelInfo)
	p.SetBehavior("Sensor", "sample", func(c *Context) {
		if c.Job() == 2 {
			c.Report(ErrSensor, "implausible reading")
		}
		c.Write("out", "v", 1)
	})
	p.Run(sim.MS(50))

	series := map[string]float64{}
	for _, smp := range p.Metrics.Snapshot() {
		key := smp.Name
		for _, l := range smp.Labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		series[key] = smp.Value
	}
	if series["rte_errors_total{kind=sensor}"] != 1 {
		t.Fatalf("rte_errors_total{kind=sensor} = %v, want 1", series["rte_errors_total{kind=sensor}"])
	}
	if series["rte_mode_switches_total{mode=sensor}"] != 1 {
		t.Fatalf("rte_mode_switches_total{mode=sensor} = %v, want 1", series["rte_mode_switches_total{mode=sensor}"])
	}
	if series["sim_events_executed_total"] == 0 {
		t.Fatal("kernel executed-events counter stayed zero after a run")
	}
	if series["rte_trace_records"] == 0 {
		t.Fatal("trace-records gauge stayed zero after a run")
	}

	if dlt.Len() < 3 { // started + error + mode switch
		t.Fatalf("DLT has %d records, want at least 3", dlt.Len())
	}
	var text strings.Builder
	if err := dlt.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"platform started", "sensor: implausible reading", "mode switch -> sensor"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("DLT text missing %q:\n%s", want, text.String())
		}
	}

	var prom strings.Builder
	if err := obs.WritePrometheus(&prom, p.Metrics.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `rte_errors_total{kind="sensor"} 1`) {
		t.Fatalf("Prometheus export missing the error counter:\n%s", prom.String())
	}
}

// TestDLTLevelFilter checks that records below the attached minimum are
// counted as dropped, not stored.
func TestDLTLevelFilter(t *testing.T) {
	s := chainSystem(model.BusCAN)
	p := MustBuild(s, Options{})
	dlt := p.EnableDLT(obs.LevelError)
	p.Run(sim.MS(10))
	for _, r := range dlt.Records() {
		if r.Level < obs.LevelError {
			t.Fatalf("record below minimum stored: %+v", r)
		}
	}
	if dlt.Dropped() == 0 {
		t.Fatal("info-level platform records should have been dropped at LevelError")
	}
}
