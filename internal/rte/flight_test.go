package rte

import (
	"bytes"
	"testing"

	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

func TestFlightRecorderOnByDefault(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	if p.Flight == nil || p.DLT == nil {
		t.Fatal("flight recorder not attached by default")
	}
	if p.DLT != p.Flight.DLT {
		t.Fatal("platform DLT is not the flight ring")
	}
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", 1) })
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", 2) })
	p.SetBehavior("Act", "apply", func(c *Context) {})
	// Hang job 2 and kill it, so the run carries one exceptional outcome.
	p.Task("Sensor", "sample").Demand = func(job int64) sim.Duration {
		if job == 2 {
			return sim.Second
		}
		return sim.US(50)
	}
	p.K.At(sim.MS(35), func() {
		if err := p.RestartRunnable("Sensor", "sample"); err != nil {
			t.Error(err)
		}
	})
	p.Run(sim.MS(50))

	v := p.Flight.Snapshot()
	if len(v.DLT) == 0 {
		t.Fatal("no DLT records in the ring (platform-started at least expected)")
	}
	// The trace sink mirrors exceptional outcomes — here the abort of the
	// hung job — into the span ring as instants; routine completions stay
	// out of the black box.
	if v.SpanTotal == 0 {
		t.Fatal("no span events mirrored from the trace")
	}
	for _, sp := range v.Spans {
		if sp.Kind == trace.Finish.String() {
			t.Fatalf("routine finish leaked into the span ring: %+v", sp)
		}
	}
	found := false
	for _, sp := range v.Spans {
		if sp.Kind == trace.Abort.String() {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no abort instant in span ring: %+v", v.Spans[:min(4, len(v.Spans))])
	}
}

func TestDisableFlight(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{DisableFlight: true})
	if p.Flight != nil || p.DLT != nil || p.Trace.Sink != nil {
		t.Fatal("flight recorder attached despite DisableFlight")
	}
	// A bundle still works: metrics only.
	b := p.Bundle("manual")
	if b == nil || len(b.Metrics) == 0 {
		t.Fatal("bundle without flight recorder lost metrics")
	}
	// And with a classic unbounded DLT attached, its records are carried.
	p.EnableDLT(obs.LevelInfo)
	p.Run(sim.MS(5))
	b = p.Bundle("manual")
	if len(b.Flight.DLT) == 0 {
		t.Fatal("bundle did not carry the attached DLT log")
	}
}

func TestEnableSamplingProducesSeries(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", 1) })
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", 2) })
	p.SetBehavior("Act", "apply", func(c *Context) {})
	s := p.EnableSampling(sim.MS(10), nil)
	if s == nil || p.Sampler() != s {
		t.Fatal("sampler not armed")
	}
	if again := p.EnableSampling(sim.MS(1), nil); again != s {
		t.Fatal("EnableSampling not idempotent")
	}
	p.Run(sim.MS(95))
	if s.Samples() != 10 {
		t.Fatalf("samples = %d, want 10 on a 10ms grid over 95ms", s.Samples())
	}
	series := s.Series()
	if len(series) == 0 {
		t.Fatal("no series recorded")
	}
	for _, sr := range series {
		if sr.Name == "sim_events_executed_total" {
			if len(sr.Points) != 10 {
				t.Fatalf("series %s has %d points", sr.Name, len(sr.Points))
			}
			last := sr.Points[len(sr.Points)-1]
			if last.Value <= sr.Points[0].Value {
				t.Fatalf("kernel event series not increasing: %+v", sr.Points)
			}
			return
		}
	}
	t.Fatalf("sim_events_executed_total series missing; have %d series", len(series))
}

func TestPlatformBundle(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	p.SetBehavior("Sensor", "sample", func(c *Context) { c.Write("out", "v", 1) })
	p.SetBehavior("Ctrl", "law", func(c *Context) { c.Write("cmd", "u", 2) })
	p.SetBehavior("Act", "apply", func(c *Context) {})
	p.EnableSampling(sim.MS(10), nil)
	p.Run(sim.MS(50))
	p.Note("test", "checkpoint reached")

	b := p.Bundle("on-demand")
	if b.Reason != "on-demand" || b.At != int64(sim.MS(50)) {
		t.Fatalf("bundle header = %+v", b)
	}
	if b.ConfigHash == "" || b.Meta["system"] != "chain" {
		t.Fatalf("bundle identity missing: hash=%q meta=%v", b.ConfigHash, b.Meta)
	}
	if len(b.Metrics) == 0 || len(b.Series) == 0 {
		t.Fatalf("bundle carries %d metrics, %d series", len(b.Metrics), len(b.Series))
	}
	if len(b.Flight.History) != 1 || b.Flight.History[0].Detail != "checkpoint reached" {
		t.Fatalf("history = %+v", b.Flight.History)
	}
	// Same config: hash stable. Different config: hash moves.
	if p2 := MustBuild(chainSystem(model.BusCAN), Options{}); p2.Bundle("x").ConfigHash != b.ConfigHash {
		t.Fatal("config hash not deterministic")
	}
	sys2 := chainSystem(model.BusCAN)
	sys2.Name = "other"
	if MustBuild(sys2, Options{}).Bundle("x").ConfigHash == b.ConfigHash {
		t.Fatal("config hash ignores configuration changes")
	}

	// Round-trip through the serialized form.
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigHash != b.ConfigHash || len(got.Series) != len(b.Series) {
		t.Fatal("bundle round-trip mismatch")
	}
}

func TestServeOptionsWiring(t *testing.T) {
	p := MustBuild(chainSystem(model.BusCAN), Options{})
	so := p.ServeOptions()
	if so.Registry != p.Metrics || so.DLT != p.DLT || so.Bundle == nil {
		t.Fatal("serve options not wired to the platform")
	}
	if b := so.Bundle("probe"); b == nil || b.Reason != "probe" {
		t.Fatal("serve bundle source broken")
	}
}
