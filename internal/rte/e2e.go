package rte

import (
	"fmt"
	"sort"

	"autorte/internal/com"
	"autorte/internal/e2eprot"
	"autorte/internal/flexray"
	"autorte/internal/obs"
	"autorte/internal/sim"
)

// E2EOptions enables AUTOSAR-style end-to-end protection of every
// bus-carried signal route: each CAN or FlexRay segment's payload grows
// by a protection header (CRC + sequence counter, DataID-bound) stamped
// at the sending RTE and verified at the receiving RTE — including each
// hop of a gatewayed route. TTP segments transport values, not byte
// payloads, and stay unprotected; so do local routes, which never leave
// the RTE. Note the header costs payload bytes: a protected CAN segment
// must still fit DLC 8, so elements wider than 48 bits cannot be
// protected over classic CAN.
type E2EOptions struct {
	// MaxDeltaCounter tolerates that many lost PDUs between valid
	// receptions before WrongSequence (default 2).
	MaxDeltaCounter uint8
	// TimeoutFactor scales a route's period into its receiver-side
	// staleness bound (default 3). Periodless (event) routes get no
	// timeout supervision.
	TimeoutFactor int
	// WindowSize, MinOKForValid and MaxErrorsForValid tune the window
	// qualification state machine (see e2eprot.Config).
	WindowSize        int
	MinOKForValid     int
	MaxErrorsForValid int
}

func (o *E2EOptions) timeoutFactor() int {
	if o.TimeoutFactor == 0 {
		return 3
	}
	return o.TimeoutFactor
}

// e2eChannel is the per-segment protection state: the sending and
// receiving ends plus the recovery hook of the carrying medium.
type e2eChannel struct {
	signal string
	dst    string // consuming component: error reports attribute to it
	period sim.Duration
	tx     *e2eprot.Sender
	rx     *e2eprot.Receiver
	// failover, when non-nil, moves the segment to a redundant physical
	// channel (dual-channel FlexRay); it reports whether it switched.
	failover   func() bool
	failedOver bool
}

// RxTamper intercepts one signal's bus reception before E2E verification
// and PDU unpacking: it decides which payloads (if any) actually reach
// the receive path — the injection point for in-fabric communication
// faults (corruption past the bus CRC, masquerade, loss, duplication,
// delay, re-ordering) that package fault's comm injectors model.
type RxTamper func(at sim.Time, payload []byte, deliver func([]byte))

// TamperRx installs t on the named bus signal's delivery path (gateway
// hops are addressable as "sig~1"/"sig~2"). A nil t removes the tamper.
// The hook is consulted dynamically, so injectors may install and remove
// it while the simulation runs.
func (p *Platform) TamperRx(signal string, t RxTamper) {
	if t == nil {
		delete(p.rxTamper, signal)
		return
	}
	p.rxTamper[signal] = t
}

// E2EState returns the window-qualified state of a protected bus signal
// and whether the signal is protected at all.
func (p *Platform) E2EState(signal string) (e2eprot.SMState, bool) {
	ch := p.e2eChans[signal]
	if ch == nil {
		return e2eprot.SMNoData, false
	}
	return ch.rx.State(), true
}

// E2EConfig returns the effective protection configuration of a protected
// signal (fault injectors use it to forge internally consistent frames).
func (p *Platform) E2EConfig(signal string) (e2eprot.Config, bool) {
	ch := p.e2eChans[signal]
	if ch == nil {
		return e2eprot.Config{}, false
	}
	return ch.rx.Config(), true
}

// E2EStatus returns the window-qualified E2E state of the protected
// channel feeding one of the component's required port elements. The
// flag is false for local, unprotected or unknown elements — then the
// state is meaningless. Behaviours use this to gate safety reactions on
// qualified channel failure rather than on single glitches.
func (c *Context) E2EStatus(port, elem string) (e2eprot.SMState, bool) {
	ch := c.p.e2eByDst[storeKey(c.comp.Name, port, elem)]
	if ch == nil {
		return e2eprot.SMNoData, false
	}
	return ch.rx.State(), true
}

// e2eDataID derives a stable 16-bit DataID from the segment's signal
// name (FNV-1a, xor-folded). Gateway hops "sig~1"/"sig~2" thus get
// distinct IDs: a PDU leaked across hops is a masquerade.
func e2eDataID(signal string) uint16 {
	h := uint32(2166136261)
	for i := 0; i < len(signal); i++ {
		h = (h ^ uint32(signal[i])) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// protectSegment upgrades a segment's single-signal PDU to its protected
// form when E2E is enabled: the payload grows by the profile header
// placed after the data bytes (signal layout untouched), and the
// channel's sender/receiver state is registered under the signal name.
// Returns nil when protection is off.
func (p *Platform) protectSegment(seg busSegment, pdu *com.IPdu, profile e2eprot.ProfileKind) *e2eChannel {
	o := p.opts.E2E
	if o == nil {
		return nil
	}
	offset := pdu.Length
	pdu.Length += profile.HeaderLen()
	cfg := e2eprot.Config{
		Profile: profile, DataID: e2eDataID(seg.signal), Offset: offset,
		MaxDeltaCounter:   o.MaxDeltaCounter,
		WindowSize:        o.WindowSize,
		MinOKForValid:     o.MinOKForValid,
		MaxErrorsForValid: o.MaxErrorsForValid,
	}
	if seg.period > 0 {
		cfg.Timeout = sim.Duration(o.timeoutFactor()) * seg.period
	}
	pdu.E2E = &cfg
	ch := &e2eChannel{
		signal: seg.signal, dst: seg.dst, period: seg.period,
		tx: e2eprot.NewSender(cfg), rx: e2eprot.NewReceiver(cfg),
	}
	p.e2eChans[seg.signal] = ch
	return ch
}

// receivePath builds the segment's reception action: E2E verification
// (when protected), PDU unpacking, then delivery. Non-OK receptions are
// dropped — the E2E contract is "correct data or no data".
func (p *Platform) receivePath(seg busSegment, pdu *com.IPdu, ch *e2eChannel) func([]byte) {
	deliver, signal := seg.deliver, seg.signal
	return func(payload []byte) {
		if ch != nil && !p.e2eAccept(ch, payload) {
			return
		}
		vals, err := pdu.Unpack(payload)
		if err != nil {
			p.Errors.Report(signal, ErrComm, err.Error())
			return
		}
		deliver(vals["v"])
	}
}

// deliverRx funnels a bus reception through the signal's tamper hook (if
// any) into the receive path.
func (p *Platform) deliverRx(signal string, payload []byte, rx func([]byte)) {
	if t := p.rxTamper[signal]; t != nil {
		t(p.K.Now(), payload, rx)
		return
	}
	rx(payload)
}

// e2eAccept verifies one reception and reports whether it may be
// delivered.
func (p *Platform) e2eAccept(ch *e2eChannel, payload []byte) bool {
	st := ch.rx.Check(p.K.Now(), payload)
	p.noteE2E(ch, st)
	return st == e2eprot.StatusOK
}

// noteE2E meters a check verdict and, for detected faults, reports a
// communication error (feeding the health monitor's debounce/escalation
// ladder) and triggers channel failover once the window qualifies the
// channel as invalid.
func (p *Platform) noteE2E(ch *e2eChannel, st e2eprot.Status) {
	p.Metrics.Counter("e2e_checks_total",
		"E2E verification checks on protected channels, by check status.",
		obs.Label{Key: "status", Value: st.String()}).Inc()
	cls := st.DetectedClass()
	if cls == "" {
		return
	}
	p.Metrics.Counter("e2e_detected_faults_total",
		"Communication faults detected by E2E protection, by detected class.",
		obs.Label{Key: "class", Value: cls}).Inc()
	p.Errors.Report(ch.dst, ErrComm, fmt.Sprintf("E2E %s on signal %s", st, ch.signal))
	if ch.rx.State() == e2eprot.SMInvalid {
		p.e2eFailover(ch)
	}
}

// e2eFailover moves a qualified-invalid channel to its redundant medium
// (dual-channel FlexRay) once, resetting the receiver so the stream gets
// a fresh counter baseline on the surviving channel.
func (p *Platform) e2eFailover(ch *e2eChannel) {
	if ch.failedOver || ch.failover == nil {
		return
	}
	ch.failedOver = true
	if !ch.failover() {
		return
	}
	ch.rx.Reset()
	p.Metrics.Counter("e2e_failovers_total",
		"Protected channels moved to a redundant physical channel after invalid qualification.").Inc()
	p.DLT.Emitf(int64(p.K.Now()), obs.LevelWarn, "RTE", "E2E",
		"signal %s qualified invalid: failing over to the redundant FlexRay channel", ch.signal)
}

// startE2ESupervision arms the receiver-side timeout supervision of
// every protected periodic segment: a check with no reception runs each
// period, reporting NotAvailable (and feeding the escalation ladder)
// once the staleness bound is crossed. The first check waits one full
// timeout so startup transport latency is not a fault.
func (p *Platform) startE2ESupervision() {
	names := make([]string, 0, len(p.e2eChans))
	for name := range p.e2eChans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch := p.e2eChans[name]
		if ch.period <= 0 || ch.rx.Config().Timeout <= 0 {
			continue
		}
		p.superviseE2E(ch, p.K.Now()+ch.rx.Config().Timeout)
	}
}

func (p *Platform) superviseE2E(ch *e2eChannel, at sim.Time) {
	p.K.AtPrio(at, 50, func() {
		p.noteE2E(ch, ch.rx.Check(at, nil))
		p.superviseE2E(ch, at+ch.period)
	})
}

// frFailover builds the dual-channel fallback for a single-channel
// FlexRay frame: flip to the other physical channel. Redundant
// (ChannelAB) frames need no action — the bus already survives on
// either channel.
func frFailover(f *flexray.Frame) func() bool {
	return func() bool {
		switch f.Channel {
		case flexray.ChannelA:
			f.Channel = flexray.ChannelB
		case flexray.ChannelB:
			f.Channel = flexray.ChannelA
		case flexray.ChannelAB:
			return false
		default:
			return false
		}
		return true
	}
}
