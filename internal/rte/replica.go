package rte

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Replica switchover: the runtime side of fail-operational deployment.
// deploy.Replicate materializes standby instances (ReplicaOf set) next to
// their primaries; this file keeps track of which instance of each
// replica group is active, suspends passive standbys until a fail-over
// promotes them, and provides the ECU-kill fault model the availability
// campaign (E13) injects. The health monitor's escalation ladder drives
// FailOver through its dedicated rung (health.RungFailover).

// initReplicas indexes the replica groups of the system and puts passive
// standbys to sleep: their tasks exist — warm state keeps flowing into
// their consumer ports — but every activation is shed until promotion.
// Hot standbys (StandbyActive) stay scheduled and consume real WCET and
// bus load; only their outputs are suppressed at the fan-in cells (see
// makeDeliver) until a switchover unmutes them.
func (p *Platform) initReplicas() {
	p.replicas = map[string][]string{}
	p.active = map[string]string{}
	p.deadECU = map[string]bool{}
	p.primaryOf = map[string]string{}
	p.switchAt = map[string]switchMark{}
	for _, c := range p.Sys.Components {
		if !c.IsStandby() {
			continue
		}
		p.replicas[c.ReplicaOf] = append(p.replicas[c.ReplicaOf], c.Name)
		p.primaryOf[c.ReplicaOf] = c.ReplicaOf
		p.primaryOf[c.Name] = c.ReplicaOf
		if _, ok := p.active[c.ReplicaOf]; !ok {
			p.active[c.ReplicaOf] = c.ReplicaOf
		}
		if c.PassiveStandby() {
			cpu := p.cpus[p.Sys.Mapping[c.Name]]
			for i := range c.Runnables {
				cpu.SetSuspended(p.tasks[c.Name+"."+c.Runnables[i].Name], true)
			}
		}
	}
}

// switchMark is one pending switchover: the instant the active pointer
// moved and the group's standby mode. The latency histogram closes it at
// the newly active instance's first delivered output.
type switchMark struct {
	at   sim.Time
	mode model.ReplicaMode
}

// mutedEntry is one fan-in delivery slot of an inactive replica: the
// latest suppressed value and the ungated delivery action a switchover
// flushes it through.
type mutedEntry struct {
	value float64
	has   bool
	fn    func(float64)
}

// replicatedSource reports whether the component is an instance of any
// replica group — statically from the topology, because Build wires
// routes before the replica index exists.
func (p *Platform) replicatedSource(name string) bool {
	c := p.Sys.Component(name)
	if c == nil {
		return false
	}
	if c.IsStandby() {
		return true
	}
	for _, o := range p.Sys.Components {
		if o.ReplicaOf == name {
			return true
		}
	}
	return false
}

// noteSwitchDelivery closes a pending switchover mark on the group's
// first post-switch delivery, observing the fail-over-to-first-output
// latency by standby mode. Hot standbys flush their muted values at the
// switch itself, so their latency is ~0; cold (passive) standbys pay the
// resume plus the wait for the next production.
func (p *Platform) noteSwitchDelivery(primary string) {
	mk, ok := p.switchAt[primary]
	if !ok {
		return
	}
	delete(p.switchAt, primary)
	p.Metrics.Histogram("deploy_switchover_latency_ns",
		"Virtual time from replica switchover to the newly active instance's first delivered output, by standby mode.",
		obs.Label{Key: "mode", Value: mk.mode.String()}).Observe(int64(p.K.Now() - mk.at))
}

// flushMuted delivers the latest suppressed value of every fan-in slot
// of the newly active instance — the "output unmute" that makes a hot
// switchover near-instant. Reports whether anything was delivered.
func (p *Platform) flushMuted(name string) bool {
	delivered := false
	for _, me := range p.muted[name] {
		if me.has {
			me.fn(me.value)
			delivered = true
		}
	}
	return delivered
}

// ReplicaGroup returns every instance of a replica group in fail-over
// preference order: the primary first, then its standbys in declaration
// order. A component without standbys is its own group of one.
func (p *Platform) ReplicaGroup(primary string) []string {
	return append([]string{primary}, p.replicas[primary]...)
}

// ActiveReplica returns the instance of the group currently delivering
// the primary's function. Before any fail-over that is the primary
// itself.
func (p *Platform) ActiveReplica(primary string) string {
	if a, ok := p.active[primary]; ok {
		return a
	}
	return primary
}

// HasStandby reports whether a fail-over of the primary's function could
// succeed right now: some other instance of the group is hosted on a
// live ECU different from the active instance's.
func (p *Platform) HasStandby(primary string) bool {
	return p.failOverTarget(primary) != ""
}

// failOverTarget picks the instance a fail-over would promote: the first
// group member (preference order) that is not the active instance and
// whose ECU is alive and different from the active instance's. Empty
// when no such instance exists.
func (p *Platform) failOverTarget(primary string) string {
	cur := p.ActiveReplica(primary)
	curECU := p.Sys.Mapping[cur]
	for _, name := range p.ReplicaGroup(primary) {
		ecu := p.Sys.Mapping[name]
		if name == cur || ecu == curECU || p.deadECU[ecu] {
			continue
		}
		return name
	}
	return ""
}

// FailOver promotes a standby of the primary's replica group: the active
// instance's runnables are shed, the promoted instance's resume, and the
// active pointer moves. The promotion is metered (deploy_failovers_total
// by swc), DLT-logged and flight-recorded. It fails when the component
// has no standbys or no live one is left to promote.
func (p *Platform) FailOver(primary string) error {
	if len(p.replicas[primary]) == 0 {
		return fmt.Errorf("rte: component %s has no standby replicas to fail over to", primary)
	}
	cur := p.ActiveReplica(primary)
	target := p.failOverTarget(primary)
	if target == "" {
		return fmt.Errorf("rte: no live standby to promote for %s (active %s on %s)",
			primary, cur, p.Sys.Mapping[cur])
	}
	mode := model.StandbyActive
	if c := p.Sys.Component(primary); c != nil {
		mode = c.Redundancy.Mode
	}
	switch mode {
	case model.StandbyPassive:
		// Cold side of the switch: shed the (presumed failed) active
		// instance and wake the promoted one. Warm input state is already
		// in the standby's consumer buffers — routes delivered to every
		// group member all along.
		p.setGroupMemberSuspended(cur, true)
		p.setGroupMemberSuspended(target, false)
	case model.StandbyActive:
		// Hot redundancy: every instance runs continuously; the switch
		// moves the active pointer and unmutes the promoted instance's
		// suppressed outputs below.
	default:
		return fmt.Errorf("rte: component %s: unknown replica mode %v", primary, mode)
	}
	p.active[primary] = target
	now := p.K.Now()
	p.switchAt[primary] = switchMark{at: now, mode: mode}
	if p.flushMuted(target) {
		p.noteSwitchDelivery(primary)
	}
	n := p.Metrics.Counter("deploy_failovers_total",
		"Replica fail-overs performed, by primary component.",
		obs.Label{Key: "swc", Value: primary})
	n.Inc()
	p.Trace.Emit(now, trace.Recover, primary, int64(n.Value()),
		"failover: "+cur+" -> "+target)
	p.DLT.Emitf(int64(now), obs.LevelWarn, "RTE", "FAIL",
		"failover %s: %s (%s) -> %s (%s)", primary,
		cur, p.Sys.Mapping[cur], target, p.Sys.Mapping[target])
	p.Note("failover", primary+": "+cur+" -> "+target)
	return nil
}

// FailBack demotes a promoted replica and restores the primary as the
// active instance — the return path after a recoverable failure (an ECU
// reset whose downtime elapsed). It refuses when nothing is promoted or
// the primary's ECU is dead; ResetECU drives it automatically once the
// rebooted ECU's tasks resume.
func (p *Platform) FailBack(primary string) error {
	if len(p.replicas[primary]) == 0 {
		return fmt.Errorf("rte: component %s has no replica group to fail back", primary)
	}
	cur := p.ActiveReplica(primary)
	if cur == primary {
		return fmt.Errorf("rte: %s is already the active instance", primary)
	}
	if ecu := p.Sys.Mapping[primary]; p.deadECU[ecu] {
		return fmt.Errorf("rte: cannot fail back %s: its ECU %s is dead", primary, ecu)
	}
	mode := model.StandbyActive
	if c := p.Sys.Component(primary); c != nil {
		mode = c.Redundancy.Mode
	}
	switch mode {
	case model.StandbyPassive:
		// Demote the standby back to its shed state and wake the primary;
		// its consumer buffers are warm (routes delivered throughout).
		p.setGroupMemberSuspended(cur, true)
		p.setGroupMemberSuspended(primary, false)
	case model.StandbyActive:
		// Both instances keep running; only the active pointer and the
		// output gating move.
	default:
		return fmt.Errorf("rte: component %s: unknown replica mode %v", primary, mode)
	}
	p.active[primary] = primary
	now := p.K.Now()
	p.switchAt[primary] = switchMark{at: now, mode: mode}
	if p.flushMuted(primary) {
		p.noteSwitchDelivery(primary)
	}
	n := p.Metrics.Counter("deploy_failbacks_total",
		"Replica fail-backs performed after primary recovery, by primary component.",
		obs.Label{Key: "swc", Value: primary})
	n.Inc()
	p.Trace.Emit(now, trace.Recover, primary, int64(n.Value()),
		"failback: "+cur+" -> "+primary)
	p.DLT.Emitf(int64(now), obs.LevelWarn, "RTE", "FBCK",
		"failback %s: %s (%s) -> %s (%s)", primary,
		cur, p.Sys.Mapping[cur], primary, p.Sys.Mapping[primary])
	p.Note("failback", primary+": "+cur+" -> "+primary)
	return nil
}

// setGroupMemberSuspended sheds or resumes every runnable of one replica
// instance. Suspending on a dead ECU is a harmless no-op: KillECU
// already shed them permanently.
func (p *Platform) setGroupMemberSuspended(name string, suspended bool) {
	comp := p.Sys.Component(name)
	if comp == nil {
		return
	}
	cpu := p.cpus[p.Sys.Mapping[name]]
	for i := range comp.Runnables {
		cpu.SetSuspended(p.tasks[name+"."+comp.Runnables[i].Name], suspended)
	}
}

// KillECU models a permanent ECU failure: every hosted job is killed and
// every hosted task shed, with no reboot scheduled — unlike ResetECU,
// nothing ever resumes (and a later escalation-ladder ECU reset resumes
// only tasks it suspended itself, so the kill sticks through it). The
// fault campaign's ecu-kill class injects this.
func (p *Platform) KillECU(ecu string) error {
	cpu := p.cpus[ecu]
	if cpu == nil {
		return fmt.Errorf("rte: unknown ECU %s", ecu)
	}
	if p.deadECU == nil {
		p.deadECU = map[string]bool{}
	}
	if p.deadECU[ecu] {
		return fmt.Errorf("rte: ECU %s is already dead", ecu)
	}
	p.deadECU[ecu] = true
	var comps []string
	for comp, e := range p.Sys.Mapping {
		if e == ecu {
			comps = append(comps, comp)
		}
	}
	sort.Strings(comps)
	killed := 0
	for _, swc := range comps {
		comp := p.Sys.Component(swc)
		for i := range comp.Runnables {
			task := p.tasks[swc+"."+comp.Runnables[i].Name]
			cpu.Kill(task, "ecu-kill")
			cpu.SetSuspended(task, true)
			killed++
		}
	}
	now := p.K.Now()
	p.Trace.Emit(now, trace.Error, ecu, 0, "ecu killed")
	p.DLT.Emitf(int64(now), obs.LevelError, "RTE", "KILL",
		"ECU %s killed permanently (%d tasks shed)", ecu, killed)
	p.Note("ecu-kill", ecu)
	return nil
}

// ECUDead reports whether the ECU was killed.
func (p *Platform) ECUDead(ecu string) bool { return p.deadECU[ecu] }
