// Package overlay implements the CAN overlay network of §4: legacy
// application software keeps its classic CAN API (identifiers, DLC,
// payload, delivery callbacks) while every frame actually travels over the
// integrated platform's time-triggered NoC. The middleware preserves the
// legacy interface and upgrades its guarantees — frames of a declared
// stream arrive with TDMA determinism instead of arbitration jitter, and
// a babbling neighbour core cannot touch them.
package overlay

import (
	"fmt"

	"autorte/internal/noc"
	"autorte/internal/sim"
)

// Message mirrors the legacy CAN message surface.
type Message struct {
	Name string
	ID   uint32
	DLC  int // payload bytes 0..8
	// Period auto-queues the message; 0 = send on demand.
	Period sim.Duration
	Offset sim.Duration
	// Deadline defaults to Period.
	Deadline sim.Duration
	// OnDeliver matches the can.Message callback shape, so legacy receive
	// handlers port without change.
	OnDeliver func(queued, delivered sim.Time, payload []byte)

	flow     *Flow
	payloads [][]byte // FIFO of queued payloads, popped at delivery
}

// Flow is an alias kept small on purpose; external users only see Message.
type Flow = noc.Flow

// VirtualCAN is the overlay middleware instance bound to one NoC.
type VirtualCAN struct {
	net   *noc.Network
	nodes map[string]noc.Coord
	msgs  map[string]*Message

	// Tamper, when set, intercepts every delivered payload inside the
	// overlay fabric — the gateway-RAM/NoC corruption no bus-level CRC
	// ever sees. It may mutate the payload or return nil to drop the
	// frame. End-to-end protection (package e2eprot) is the only layer
	// that can catch what it does.
	Tamper func(m *Message, at sim.Time, payload []byte) []byte
}

// New creates the overlay on a network. The network must not be started
// yet (flows are declared during AttachMessage).
func New(net *noc.Network) *VirtualCAN {
	return &VirtualCAN{net: net, nodes: map[string]noc.Coord{}, msgs: map[string]*Message{}}
}

// AttachNode maps a legacy ECU name onto its hosting IP core.
func (v *VirtualCAN) AttachNode(name string, core noc.Coord) error {
	if name == "" {
		return fmt.Errorf("overlay: empty node name")
	}
	if _, dup := v.nodes[name]; dup {
		return fmt.Errorf("overlay: duplicate node %s", name)
	}
	v.nodes[name] = core
	return nil
}

// AttachMessage declares a legacy message between two attached nodes and
// reserves its NoC flow. The CAN identifier keeps its role as the stream
// identity; arbitration priority is superseded by the TDMA schedule, which
// is strictly stronger (no priority inversion, no load dependence).
func (v *VirtualCAN) AttachMessage(m *Message, sender, receiver string) error {
	if m.Name == "" {
		return fmt.Errorf("overlay: message with empty name")
	}
	if m.DLC < 0 || m.DLC > 8 {
		return fmt.Errorf("overlay: message %s: DLC %d outside 0..8", m.Name, m.DLC)
	}
	src, ok := v.nodes[sender]
	if !ok {
		return fmt.Errorf("overlay: unknown sender node %q", sender)
	}
	dst, ok := v.nodes[receiver]
	if !ok {
		return fmt.Errorf("overlay: unknown receiver node %q", receiver)
	}
	if _, dup := v.msgs[m.Name]; dup {
		return fmt.Errorf("overlay: duplicate message %s", m.Name)
	}
	// A classic frame (header + payload) maps onto a small packet: 2
	// flits of header plus one per payload byte pair.
	flow := &noc.Flow{
		Name: "legacy/" + m.Name,
		Src:  src, Dst: dst,
		Flits:    2 + (m.DLC+1)/2,
		Period:   m.Period,
		Offset:   m.Offset,
		Deadline: m.Deadline,
	}
	flow.OnDeliver = func(queued, delivered sim.Time) {
		var payload []byte
		if len(m.payloads) > 0 {
			payload = m.payloads[0]
			if m.Period == 0 {
				m.payloads = m.payloads[1:] // event stream: consume
			}
			// Periodic streams keep the latest payload (state semantics).
		}
		if v.Tamper != nil && payload != nil {
			payload = v.Tamper(m, delivered, payload)
			if payload == nil {
				return // tampered into oblivion: the frame is lost in the fabric
			}
		}
		if m.OnDeliver != nil {
			m.OnDeliver(queued, delivered, payload)
		}
	}
	if err := v.net.AddFlow(flow); err != nil {
		return err
	}
	m.flow = flow
	v.msgs[m.Name] = m
	return nil
}

// Send queues one frame with a payload — the legacy transmit call.
// Periodic messages use this too when the application wants to update the
// payload carried by the next automatic transmission.
func (v *VirtualCAN) Send(name string, payload []byte) error {
	m, ok := v.msgs[name]
	if !ok {
		return fmt.Errorf("overlay: unknown message %q", name)
	}
	if len(payload) > m.DLC {
		return fmt.Errorf("overlay: message %s: payload %d bytes exceeds DLC %d", name, len(payload), m.DLC)
	}
	cp := append([]byte(nil), payload...)
	if m.Period > 0 {
		// Periodic stream: state semantics — the latest payload rides
		// every subsequent automatic frame.
		m.payloads = [][]byte{cp}
		return nil
	}
	// Event stream: queued semantics, one frame per Send.
	m.payloads = append(m.payloads, cp)
	v.net.Inject(m.flow)
	return nil
}

// Message returns an attached message by name, or nil.
func (v *VirtualCAN) Message(name string) *Message { return v.msgs[name] }
