package overlay

import (
	"bytes"
	"testing"

	"autorte/internal/noc"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

func ttNet(rec *trace.Recorder) (*sim.Kernel, *noc.Network) {
	k := sim.NewKernel()
	net := noc.MustNewNetwork(k, noc.Config{
		Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.TDMA, SlotLength: sim.US(100),
	}, rec)
	return k, net
}

func TestAttachValidation(t *testing.T) {
	_, net := ttNet(nil)
	v := New(net)
	if v.AttachNode("", noc.Coord{}) == nil {
		t.Fatal("empty node name accepted")
	}
	if err := v.AttachNode("engine", noc.Coord{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if v.AttachNode("engine", noc.Coord{X: 1, Y: 0}) == nil {
		t.Fatal("duplicate node accepted")
	}
	v.AttachNode("dash", noc.Coord{X: 3, Y: 0})
	if v.AttachMessage(&Message{Name: "", DLC: 8}, "engine", "dash") == nil {
		t.Fatal("empty message name accepted")
	}
	if v.AttachMessage(&Message{Name: "x", DLC: 9}, "engine", "dash") == nil {
		t.Fatal("DLC 9 accepted")
	}
	if v.AttachMessage(&Message{Name: "x", DLC: 8}, "ghost", "dash") == nil {
		t.Fatal("unknown sender accepted")
	}
	if err := v.AttachMessage(&Message{Name: "rpm", DLC: 8, Period: sim.MS(10)}, "engine", "dash"); err != nil {
		t.Fatal(err)
	}
	if v.AttachMessage(&Message{Name: "rpm", DLC: 8}, "engine", "dash") == nil {
		t.Fatal("duplicate message accepted")
	}
	if v.Message("rpm") == nil || v.Message("ghost") != nil {
		t.Fatal("message lookup wrong")
	}
}

func TestPeriodicLegacyMessageCarriesLatestPayload(t *testing.T) {
	rec := &trace.Recorder{}
	k, net := ttNet(rec)
	v := New(net)
	v.AttachNode("engine", noc.Coord{X: 0, Y: 0})
	v.AttachNode("dash", noc.Coord{X: 3, Y: 0})
	var got [][]byte
	m := &Message{
		Name: "rpm", ID: 0x100, DLC: 2, Period: sim.MS(10),
		OnDeliver: func(_, _ sim.Time, payload []byte) {
			got = append(got, append([]byte(nil), payload...))
		},
	}
	if err := v.AttachMessage(m, "engine", "dash"); err != nil {
		t.Fatal(err)
	}
	net.Start()
	k.At(sim.MS(15), func() { v.Send("rpm", []byte{0x12, 0x34}) })
	k.Run(sim.MS(45))
	if len(got) < 4 {
		t.Fatalf("delivered %d frames, want >= 4", len(got))
	}
	// Frames before the Send carry no payload; frames after carry it.
	if got[0] != nil && len(got[0]) != 0 {
		t.Fatalf("pre-send frame carried %v", got[0])
	}
	last := got[len(got)-1]
	if !bytes.Equal(last, []byte{0x12, 0x34}) {
		t.Fatalf("post-send frame carried %v, want 12 34", last)
	}
}

func TestEventLegacyMessageFIFO(t *testing.T) {
	rec := &trace.Recorder{}
	k, net := ttNet(rec)
	v := New(net)
	v.AttachNode("engine", noc.Coord{X: 0, Y: 0})
	v.AttachNode("dash", noc.Coord{X: 3, Y: 0})
	var got [][]byte
	m := &Message{
		Name: "evt", ID: 0x200, DLC: 1, Deadline: sim.MS(50),
		OnDeliver: func(_, _ sim.Time, p []byte) { got = append(got, p) },
	}
	if err := v.AttachMessage(m, "engine", "dash"); err != nil {
		t.Fatal(err)
	}
	net.Start()
	k.At(0, func() {
		v.Send("evt", []byte{1})
		v.Send("evt", []byte{2})
	})
	k.At(sim.MS(5), func() { v.Send("evt", []byte{3}) })
	k.Run(sim.MS(30))
	if len(got) != 3 {
		t.Fatalf("delivered %d, want 3", len(got))
	}
	for i, want := range []byte{1, 2, 3} {
		if len(got[i]) != 1 || got[i][0] != want {
			t.Fatalf("frame %d carried %v, want [%d]", i, got[i], want)
		}
	}
}

func TestSendValidation(t *testing.T) {
	_, net := ttNet(nil)
	v := New(net)
	v.AttachNode("a", noc.Coord{X: 0, Y: 0})
	v.AttachNode("b", noc.Coord{X: 1, Y: 0})
	v.AttachMessage(&Message{Name: "m", DLC: 2}, "a", "b")
	if v.Send("ghost", nil) == nil {
		t.Fatal("unknown message sent")
	}
	if v.Send("m", []byte{1, 2, 3}) == nil {
		t.Fatal("payload exceeding DLC accepted")
	}
}

// The §4 claim: legacy traffic on the integrated platform keeps working
// (and keeps its timing) while a neighbour core babbles.
func TestLegacyTrafficUnaffectedByBabbler(t *testing.T) {
	measure := func(babble bool) trace.Stats {
		rec := &trace.Recorder{}
		k, net := ttNet(rec)
		v := New(net)
		v.AttachNode("engine", noc.Coord{X: 0, Y: 0})
		v.AttachNode("dash", noc.Coord{X: 3, Y: 0})
		// Period = 2 TDMA cycles (16 cores x 100us): phase-locked.
		if err := v.AttachMessage(&Message{Name: "rpm", DLC: 8, Period: sim.US(3200)}, "engine", "dash"); err != nil {
			t.Fatal(err)
		}
		if babble {
			net.BabbleCore(noc.Coord{X: 1, Y: 0}, 0, sim.MS(50))
		}
		net.Start()
		k.Run(sim.MS(100))
		return trace.Compute(rec.Latencies("legacy/rpm"))
	}
	quiet, loud := measure(false), measure(true)
	if quiet.N == 0 || loud.N != quiet.N {
		t.Fatalf("legacy frames lost under babble: %d vs %d", loud.N, quiet.N)
	}
	if loud.Max != quiet.Max || loud.Jitter != quiet.Jitter {
		t.Fatalf("babbler moved legacy timing: quiet %v, loud %v", quiet, loud)
	}
}
