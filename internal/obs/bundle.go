package obs

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// A diagnostic bundle is the serialized form of "what just happened":
// one consistent snapshot of the flight recorder, the metric registry,
// and any virtual-time series, stamped with the reason it was cut and a
// hash of the platform configuration that produced it. Platforms cut
// bundles on health escalations at partition-restart or above, on safe
// stop, and on demand; cmd/autodiag inspects them offline.

// BundleVersion is the format version written into every bundle.
const BundleVersion = 1

// Bundle is one serialized diagnostic snapshot.
//
//autovet:nilsafe
type Bundle struct {
	Version int    `json:"version"`
	Reason  string `json:"reason"`
	// At is the virtual time (ns) the bundle was cut.
	At int64 `json:"at_ns"`
	// ConfigHash fingerprints the platform model so two bundles can be
	// checked for comparability before diffing.
	ConfigHash string `json:"config_hash,omitempty"`
	// Meta carries free-form identification (platform name, scenario,
	// run index) set by whoever cuts the bundle.
	Meta map[string]string `json:"meta,omitempty"`

	Flight  FlightView `json:"flight"`
	Metrics []Sample   `json:"metrics,omitempty"`
	Series  []Series   `json:"series,omitempty"`
}

// Write serializes the bundle as gzipped JSON. Safe on a nil receiver
// (writes nothing, returns nil).
func (b *Bundle) Write(w io.Writer) error {
	if b == nil {
		return nil
	}
	zw := gzip.NewWriter(w)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(b); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// WriteFile serializes the bundle to path. Safe on a nil receiver
// (no-op).
func (b *Bundle) WriteFile(path string) error {
	if b == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBundle deserializes a bundle written by Write. Plain (ungzipped)
// JSON is accepted too, so hand-edited or tool-produced bundles load.
func ReadBundle(r io.Reader) (*Bundle, error) {
	br := newPeekReader(r)
	head, err := br.peek(2)
	if err != nil {
		return nil, fmt.Errorf("obs: read bundle: %w", err)
	}
	var src io.Reader = br
	if len(head) == 2 && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("obs: read bundle: %w", err)
		}
		defer zr.Close()
		src = zr
	}
	var b Bundle
	if err := json.NewDecoder(src).Decode(&b); err != nil {
		return nil, fmt.Errorf("obs: decode bundle: %w", err)
	}
	if b.Version == 0 || b.Version > BundleVersion {
		return nil, fmt.Errorf("obs: unsupported bundle version %d", b.Version)
	}
	return &b, nil
}

// ReadBundleFile loads a bundle from path.
func ReadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}

// peekReader lets ReadBundle sniff the gzip magic without consuming it.
type peekReader struct {
	r    io.Reader
	head []byte
}

func newPeekReader(r io.Reader) *peekReader { return &peekReader{r: r} }

func (p *peekReader) peek(n int) ([]byte, error) {
	buf := make([]byte, n)
	m, err := io.ReadFull(p.r, buf)
	p.head = buf[:m]
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return p.head, nil
	}
	return p.head, err
}

func (p *peekReader) Read(b []byte) (int, error) {
	if len(p.head) > 0 {
		n := copy(b, p.head)
		p.head = p.head[n:]
		return n, nil
	}
	return p.r.Read(b)
}

// ChromeEvents converts the bundle's flight spans into Chrome trace
// events (one lane per span name kind, instants as thread-scoped instant
// events) so a bundle exports straight into chrome://tracing. Nil on a
// nil receiver.
func (b *Bundle) ChromeEvents() []TraceEvent {
	if b == nil {
		return nil
	}
	const pid = 1
	lanes := map[string]int64{}
	var order []string
	lane := func(key string) int64 {
		if id, ok := lanes[key]; ok {
			return id
		}
		id := int64(len(lanes) + 1)
		lanes[key] = id
		order = append(order, key)
		return id
	}
	var events []TraceEvent
	for _, sp := range b.Flight.Spans {
		key := sp.Kind
		if key == "" {
			key = sp.Name
		}
		tid := lane(key)
		ev := TraceEvent{
			Name: sp.Name,
			Cat:  sp.Kind,
			TS:   float64(sp.Start) / 1e3,
			PID:  pid,
			TID:  tid,
		}
		if sp.Detail != "" {
			ev.Args = map[string]any{"detail": sp.Detail}
		}
		if sp.Count > 1 {
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			ev.Args["count"] = sp.Count
		}
		if sp.End > sp.Start {
			ev.Phase = "X"
			ev.Dur = float64(sp.End-sp.Start) / 1e3
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		events = append(events, ev)
	}
	meta := []TraceEvent{ProcessName(pid, "autorte")}
	for _, key := range order {
		meta = append(meta, ThreadName(pid, lanes[key], key))
	}
	return append(meta, events...)
}

// SampleDiff is the change of one metric series between two bundles.
type SampleDiff struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	Delta  float64 `json:"delta"`
}

// DiffSamples compares two metric snapshots series-by-series, returning
// every series whose value changed plus series present in only one
// snapshot (the missing side reads as zero). Histograms compare on
// their cumulative count. Output is deterministic: sorted by name then
// label set.
func DiffSamples(before, after []Sample) []SampleDiff {
	val := func(s Sample) float64 {
		if s.Kind == KindHistogram.String() {
			return float64(s.Count)
		}
		return s.Value
	}
	type side struct {
		s   Sample
		has bool
	}
	merged := map[string]*[2]side{}
	var order []string
	add := func(idx int, samples []Sample) {
		for _, s := range samples {
			key := seriesKey(s.Name, s.Labels)
			m := merged[key]
			if m == nil {
				m = &[2]side{}
				merged[key] = m
				order = append(order, key)
			}
			m[idx] = side{s: s, has: true}
		}
	}
	add(0, before)
	add(1, after)
	var out []SampleDiff
	for _, key := range order {
		m := merged[key]
		ref := m[0].s
		if !m[0].has {
			ref = m[1].s
		}
		var bv, av float64
		if m[0].has {
			bv = val(m[0].s)
		}
		if m[1].has {
			av = val(m[1].s)
		}
		if bv == av {
			continue
		}
		out = append(out, SampleDiff{
			Name: ref.Name, Labels: ref.Labels, Kind: ref.Kind,
			Before: bv, After: av, Delta: av - bv,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// WriteSummary renders a human-oriented overview of the bundle: identity,
// ring fill levels, DLT level counts, history tail. Safe on a nil
// receiver (writes nothing).
func (b *Bundle) WriteSummary(w io.Writer) error {
	if b == nil {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "bundle v%d  reason=%s  at=%.6fs\n", b.Version, b.Reason, float64(b.At)/1e9)
	if b.ConfigHash != "" {
		fmt.Fprintf(&sb, "config hash: %s\n", b.ConfigHash)
	}
	if len(b.Meta) > 0 {
		keys := make([]string, 0, len(b.Meta))
		for k := range b.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "meta %s: %s\n", k, b.Meta[k])
		}
	}
	levelCounts := map[Level]int{}
	for _, r := range b.Flight.DLT {
		levelCounts[r.Level]++
	}
	fmt.Fprintf(&sb, "dlt: %d retained / %d total", len(b.Flight.DLT), b.Flight.DLTTotal)
	for lv := LevelFatal; ; lv-- {
		if n := levelCounts[lv]; n > 0 {
			fmt.Fprintf(&sb, "  %s=%d", lv, n)
		}
		if lv == LevelVerbose {
			break
		}
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "spans: %d retained / %d total\n", len(b.Flight.Spans), b.Flight.SpanTotal)
	fmt.Fprintf(&sb, "metric deltas: %d retained / %d total\n", len(b.Flight.Deltas), b.Flight.DeltaTotal)
	fmt.Fprintf(&sb, "metrics: %d series   time series: %d\n", len(b.Metrics), len(b.Series))
	if n := len(b.Flight.History); n > 0 {
		fmt.Fprintf(&sb, "history (%d events):\n", n)
		for _, h := range b.Flight.History {
			fmt.Fprintf(&sb, "  %12.6f  %-12s %s\n", float64(h.At)/1e9, h.Kind, h.Detail)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
