package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	sp.End() // must not panic
	child := tr.StartChild(sp, "child")
	child.End()
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
	var sb strings.Builder
	if err := tr.WriteTree(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteTree wrote %q, err %v", sb.String(), err)
	}
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatal("nil WriteChrome must still emit a valid empty trace")
	}
}

func TestTracerTreeAndChrome(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("verify")
	a := tr.StartChild(root, "verify/ecu")
	a.End()
	b := tr.StartChild(root, "verify/bus")
	b.End()
	root.End()
	if tr.Len() != 3 {
		t.Fatalf("recorded %d spans, want 3", tr.Len())
	}
	var tree strings.Builder
	if err := tr.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tree.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree has %d lines:\n%s", len(lines), tree.String())
	}
	if !strings.HasPrefix(lines[0], "verify") || !strings.HasPrefix(lines[1], "  verify/ecu") {
		t.Fatalf("tree nesting wrong:\n%s", tree.String())
	}

	var js strings.Builder
	if err := tr.WriteChrome(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("chrome trace has %d events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" || ev.TID < 1 {
			t.Fatalf("bad event %+v", ev)
		}
		if ev.Dur < 0 || ev.TS < 0 {
			t.Fatalf("negative timing in %+v", ev)
		}
	}
}

func TestChromeLaneAssignmentSeparatesOverlaps(t *testing.T) {
	tr := NewTracer()
	// Fabricate two overlapping, non-nested spans plus a containing root
	// by writing span data directly (timing-independent).
	tr.spans = []spanData{
		{name: "root", parent: -1, start: 0, end: 100},
		{name: "jobA", parent: 0, start: 10, end: 60},
		{name: "jobB", parent: 0, start: 30, end: 90},
	}
	events := tr.ChromeEvents()
	tid := map[string]int64{}
	for _, ev := range events {
		tid[ev.Name] = ev.TID
	}
	if tid["jobA"] == tid["jobB"] {
		t.Fatalf("overlapping siblings share lane %d", tid["jobA"])
	}
	if tid["root"] != tid["jobA"] && tid["root"] != tid["jobB"] {
		// Root contains both; it may share a lane with either.
		t.Logf("root on own lane %d (acceptable)", tid["root"])
	}
}

func TestOpenSpanClosedAtExport(t *testing.T) {
	tr := NewTracer()
	tr.Start("open") // never ended
	events := tr.ChromeEvents()
	if len(events) != 1 || events[0].Dur < 0 {
		t.Fatalf("open span exported badly: %+v", events)
	}
}
