package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func testServeHandler() (http.Handler, *Registry, *Log) {
	reg := NewRegistry()
	reg.Counter("rte_errors_total", "reported errors", Label{Key: "task", Value: "Sensor"}).Add(3)
	reg.Gauge("health_degradation_level", "current level").Set(1)
	reg.Histogram("latency_ns", "latency").Observe(1500)
	dlt := NewBoundedLog(LevelInfo, 64)
	dlt.Emit(1000, LevelWarn, "HLTH", "MON", "deadline missed")
	h := NewServeHandler(ServeOptions{
		Registry: reg,
		DLT:      dlt,
		Bundle: func(reason string) *Bundle {
			return &Bundle{Version: BundleVersion, Reason: reason, Metrics: reg.Snapshot()}
		},
	})
	return h, reg, dlt
}

// validatePrometheusText is a strict line-level parser for the text
// exposition format: every line must be a comment, blank, or
// `name{labels} value`.
func validatePrometheusText(t *testing.T, text string) int {
	t.Helper()
	series := 0
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		rest := line
		// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i == 0 {
			t.Fatalf("line %d: no metric name: %q", ln+1, line)
		}
		rest = rest[i:]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "} ")
			if end < 0 {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			rest = rest[end+1:]
		}
		if !strings.HasPrefix(rest, " ") {
			t.Fatalf("line %d: missing value separator: %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, strings.TrimSpace(rest), err)
		}
		series++
	}
	return series
}

func TestServeMetricsScrape(t *testing.T) {
	h, _, _ := testServeHandler()
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	n := validatePrometheusText(t, string(body))
	// counter + gauge + histogram (bucket + inf + sum + count)
	if n < 6 {
		t.Fatalf("scrape has %d series lines:\n%s", n, body)
	}
	if !strings.Contains(string(body), `rte_errors_total{task="Sensor"} 3`) {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	resp2, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	if err := json.NewDecoder(resp2.Body).Decode(&samples); err != nil {
		t.Fatalf("metrics.json invalid: %v", err)
	}
	resp2.Body.Close()
	if len(samples) != 3 {
		t.Fatalf("metrics.json has %d samples", len(samples))
	}
}

func TestServeDLTDumpAndTail(t *testing.T) {
	h, _, dlt := testServeHandler()
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dlt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "deadline missed") {
		t.Fatalf("dlt dump missing retained record:\n%s", body)
	}

	// Live tail: the handler subscribes before writing response headers,
	// so once Get returns the subscription is active — records emitted
	// after connect must stream out.
	tailResp, err := http.Get(srv.URL + "/dlt?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer tailResp.Body.Close()
	dlt.Emit(2000, LevelError, "RTE", "ERR", "post-connect record")
	line, err := bufio.NewReader(tailResp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("tail read: %v", err)
	}
	var rec struct {
		At    int64  `json:"at_ns"`
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("tail line not JSON: %v (%q)", err, line)
	}
	if rec.Msg != "post-connect record" || rec.Level != "error" || rec.At != 2000 {
		t.Fatalf("tail delivered %+v", rec)
	}
}

func TestServeBundleDownload(t *testing.T) {
	h, _, _ := testServeHandler()
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/bundle?reason=smoke")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := ReadBundle(resp.Body)
	if err != nil {
		t.Fatalf("served bundle unreadable: %v", err)
	}
	if b.Reason != "smoke" || len(b.Metrics) != 3 {
		t.Fatalf("served bundle = %+v", b)
	}
}

func TestServeNilSources(t *testing.T) {
	srv := httptest.NewServer(NewServeHandler(ServeOptions{}))
	defer srv.Close()
	for _, path := range []string{"/", "/metrics", "/metrics.json", "/dlt"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d with nil sources", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/bundle")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/bundle -> %d without a source, want 404", resp.StatusCode)
	}
	// A tail over a nil log terminates immediately (closed channel)
	// instead of hanging.
	tailResp, err := http.Get(srv.URL + "/dlt?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(tailResp.Body)
	tailResp.Body.Close()
	if len(data) != 0 {
		t.Fatalf("nil tail produced %q", data)
	}
	_ = fmt.Sprint() // keep fmt imported if assertions above change
}
