package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func testBundle() *Bundle {
	f := NewFlight(FlightConfig{DLTCap: 8, DLTMin: LevelVerbose})
	f.DLT.Emit(100, LevelError, "HLTH", "ESC", "rung 2: restart partition")
	f.DLT.Emit(200, LevelFatal, "HLTH", "ESC", "safe stop")
	f.Span(SpanEvent{Name: "recover", Start: 100, End: 180, Kind: "recovery"})
	f.Instant(200, "safe-stop", "escalation", "final")
	f.Note(100, "escalation", "rung=restart-partition")
	f.Note(200, "escalation", "rung=safe-stop")
	reg := NewRegistry()
	reg.Counter("errors_total", "errors").Add(3)
	reg.Gauge("health_degradation_level", "level").Set(3)
	return &Bundle{
		Version:    BundleVersion,
		Reason:     "safe-stop",
		At:         200,
		ConfigHash: "sha256:abc",
		Meta:       map[string]string{"platform": "e11"},
		Flight:     f.Snapshot(),
		Metrics:    reg.Snapshot(),
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := testBundle()
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "safe-stop" || got.At != 200 || got.ConfigHash != "sha256:abc" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Flight.DLT) != 2 || got.Flight.DLT[1].Level != LevelFatal {
		t.Fatalf("DLT did not round-trip levels: %+v", got.Flight.DLT)
	}
	if len(got.Flight.History) != 2 || got.Flight.History[1].Detail != "rung=safe-stop" {
		t.Fatalf("history mismatch: %+v", got.Flight.History)
	}
	if len(got.Metrics) != 2 {
		t.Fatalf("metrics = %d series, want 2", len(got.Metrics))
	}
}

func TestBundleFileRoundTripAndPlainJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bundle")
	b := testBundle()
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["platform"] != "e11" {
		t.Fatalf("meta lost: %+v", got.Meta)
	}

	// Plain JSON (no gzip) loads too.
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("plain JSON bundle rejected: %v", err)
	}
	if got2.Reason != b.Reason {
		t.Fatal("plain JSON round-trip mismatch")
	}

	// Unknown version rejected.
	bad, _ := json.Marshal(map[string]any{"version": BundleVersion + 1})
	if _, err := ReadBundle(bytes.NewReader(bad)); err == nil {
		t.Fatal("future bundle version accepted")
	}
}

func TestNilBundleSafe(t *testing.T) {
	var b *Bundle
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil bundle wrote data")
	}
	if err := b.WriteFile(filepath.Join(t.TempDir(), "n")); err != nil {
		t.Fatal(err)
	}
	if b.ChromeEvents() != nil {
		t.Fatal("nil bundle produced events")
	}
	if err := b.WriteSummary(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil bundle wrote a summary")
	}
}

func TestBundleChromeEvents(t *testing.T) {
	b := testBundle()
	events := b.ChromeEvents()
	var complete, instant, meta int
	for _, ev := range events {
		switch ev.Phase {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 1 || instant != 1 || meta < 2 {
		t.Fatalf("phases X=%d i=%d M=%d", complete, instant, meta)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(events) {
		t.Fatalf("trace has %d events, want %d", len(doc.TraceEvents), len(events))
	}
}

func TestDiffSamples(t *testing.T) {
	regA := NewRegistry()
	regA.Counter("errs_total", "").Add(1)
	regA.Gauge("steady", "").Set(5)
	regA.Histogram("lat", "").Observe(10)
	before := regA.Snapshot()

	regB := NewRegistry()
	regB.Counter("errs_total", "").Add(4)
	regB.Gauge("steady", "").Set(5)
	h := regB.Histogram("lat", "")
	h.Observe(10)
	h.Observe(20)
	regB.Counter("new_total", "").Add(7)
	after := regB.Snapshot()

	diffs := DiffSamples(before, after)
	byName := map[string]SampleDiff{}
	for _, d := range diffs {
		byName[d.Name] = d
	}
	if len(diffs) != 3 {
		t.Fatalf("diffs = %+v, want 3 (steady unchanged)", diffs)
	}
	if d := byName["errs_total"]; d.Delta != 3 {
		t.Fatalf("errs delta = %v, want 3", d.Delta)
	}
	if d := byName["new_total"]; d.Before != 0 || d.After != 7 {
		t.Fatalf("new-series diff = %+v", d)
	}
	if d := byName["lat"]; d.Delta != 1 {
		t.Fatalf("histogram diff on count = %+v, want +1", d)
	}
	if _, ok := byName["steady"]; ok {
		t.Fatal("unchanged series reported")
	}
}

func TestBundleSummary(t *testing.T) {
	var sb strings.Builder
	if err := testBundle().WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"reason=safe-stop", "sha256:abc", "platform: e11", "fatal=1", "rung=safe-stop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
