package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilLogDiscards(t *testing.T) {
	var l *Log
	l.Emit(1, LevelError, "RTE", "ERR", "dropped")
	l.Emitf(2, LevelInfo, "RTE", "MODE", "x %d", 1)
	if l.Len() != 0 || l.Count(LevelVerbose) != 0 || l.Dropped() != 0 || l.Records() != nil {
		t.Fatal("nil log must discard and report zero state")
	}
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteText wrote %q, err %v", sb.String(), err)
	}
	if err := l.WriteJSON(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteJSON wrote %q, err %v", sb.String(), err)
	}
}

func TestLogLevelFilter(t *testing.T) {
	l := NewLog(LevelWarn)
	l.Emit(10, LevelInfo, "RTE", "ERR", "below threshold")
	l.Emit(20, LevelError, "RTE", "ERR", "kept")
	if l.Len() != 1 || l.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 1/1", l.Len(), l.Dropped())
	}
	if l.Count(LevelError) != 1 || l.Count(LevelFatal) != 0 {
		t.Fatal("count by level wrong")
	}
	rec := l.Records()[0]
	if rec.At != 20 || rec.App != "RTE" || rec.Ctx != "ERR" || rec.Msg != "kept" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestLogWriters(t *testing.T) {
	l := NewLog(LevelVerbose)
	l.Emit(1_500_000_000, LevelWarn, "SIM", "KRN", "queue deep")
	var text strings.Builder
	if err := l.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1.500000", "SIM", "KRN", "warn", "queue deep"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q: %q", want, text.String())
		}
	}
	var js strings.Builder
	if err := l.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON line does not parse: %v", err)
	}
	if decoded["level"] != "warn" || decoded["app"] != "SIM" {
		t.Fatalf("decoded = %v", decoded)
	}
}

func TestLevelString(t *testing.T) {
	if LevelVerbose.String() != "verbose" || LevelFatal.String() != "fatal" {
		t.Fatal("level names wrong")
	}
	if Level(99).String() != "level(99)" {
		t.Fatal("unknown level rendering wrong")
	}
}
