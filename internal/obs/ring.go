package obs

import "sync"

// Ring is a fixed-capacity circular buffer — the storage primitive of the
// flight recorder. Pushes are allocation-free after the buffer reaches
// capacity (the backing array is grown once, amortized, up to cap and
// never beyond), so a ring can stay attached to a hot path for the whole
// life of a platform at bounded cost. The oldest entry is overwritten
// when the ring is full; Total counts every push ever made so consumers
// can tell how much history the cap discarded. Safe for concurrent use.
// A nil *Ring is valid: pushes are discarded and snapshots are empty.
//
//autovet:nilsafe
type Ring[T any] struct {
	mu sync.Mutex
	//autovet:bounded grows to cap, then overwrites in place
	buf   []T
	cap   int
	start int    // read index once wrapped
	total uint64 // pushes ever
}

// DefaultRingCap is the capacity used when a ring is created with a
// non-positive one.
const DefaultRingCap = 1024

// NewRing returns an empty ring with the given capacity (DefaultRingCap
// when n <= 0). The backing array is allocated lazily on first push, so
// building a platform with many rings costs nothing until they record.
func NewRing[T any](n int) *Ring[T] {
	if n <= 0 {
		n = DefaultRingCap
	}
	return &Ring[T]{cap: n}
}

// Push appends v, overwriting the oldest entry when full. Safe on a nil
// receiver (discards).
func (r *Ring[T]) Push(v T) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(v)
}

// PushMerge appends v unless merge absorbs it into one of the newest
// lookback retained entries. merge receives a pointer to a retained
// entry (scanned newest-first) and may mutate it in place; returning
// true stops the scan and drops v. Total counts the event either way:
// coalescing compresses the ring's representation, not its history.
// Safe on a nil receiver (discards).
func (r *Ring[T]) PushMerge(v T, lookback int, merge func(prev *T, v T) bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if lookback > n {
		lookback = n
	}
	for i := 0; i < lookback; i++ {
		// Newest-first: the most recent entry sits just before the wrap
		// point (start) once full, at the slice end while still filling.
		idx := (r.start - 1 - i + 2*n) % n
		//autovet:allow lockorder documented PushMerge contract: merge is pure in-place coalescing and must not take locks
		if merge(&r.buf[idx], v) {
			r.total++
			return
		}
	}
	r.push(v)
}

// push stores v; callers hold r.mu.
func (r *Ring[T]) push(v T) {
	if r.cap <= 0 {
		r.cap = DefaultRingCap
	}
	r.total++
	if len(r.buf) < r.cap {
		if len(r.buf) == cap(r.buf) {
			// Grow explicitly — small first, doubling, never past cap — so a
			// sparsely used ring stays tiny and a filling one doesn't churn
			// append-overshoot garbage on short-lived campaign platforms.
			n := 2 * cap(r.buf)
			if n < 32 {
				n = 32
			}
			if n > r.cap {
				n = r.cap
			}
			grown := make([]T, len(r.buf), n)
			copy(grown, r.buf)
			r.buf = grown
		}
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % r.cap
}

// Len returns the number of retained entries. Zero on a nil receiver.
func (r *Ring[T]) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the ring capacity. Zero on a nil receiver.
func (r *Ring[T]) Cap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cap
}

// Total returns how many entries were ever pushed, including the ones the
// cap has since discarded. Zero on a nil receiver.
func (r *Ring[T]) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained entries oldest-first. The result is a
// copy: the ring keeps recording while the caller inspects it. Nil on a
// nil receiver.
func (r *Ring[T]) Snapshot() []T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}
