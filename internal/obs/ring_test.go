package obs

import "testing"

func TestNilRingDiscards(t *testing.T) {
	var r *Ring[int]
	r.Push(1)
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 {
		t.Fatal("nil ring reported non-zero state")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil ring snapshot not nil")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](4)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("empty ring snapshot = %v, want nil", got)
	}
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	if got := r.Snapshot(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("unwrapped snapshot = %v", got)
	}
	for i := 4; i <= 10; i++ {
		r.Push(i)
	}
	got := r.Snapshot()
	want := []int{7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("wrapped snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapped snapshot = %v, want %v (oldest-first)", got, want)
		}
	}
	if r.Len() != 4 || r.Cap() != 4 || r.Total() != 10 {
		t.Fatalf("len=%d cap=%d total=%d, want 4/4/10", r.Len(), r.Cap(), r.Total())
	}
}

func TestRingSnapshotIsCopy(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	snap := r.Snapshot()
	r.Push(2)
	r.Push(3)
	if snap[0] != 1 {
		t.Fatal("snapshot mutated by later pushes")
	}
}

func TestRingPushMerge(t *testing.T) {
	sameParity := func(prev *int, v int) bool {
		if (*prev)%2 != v%2 {
			return false
		}
		*prev += v
		return true
	}
	r := NewRing[int](4)
	r.PushMerge(1, 2, sameParity) // empty ring: plain push
	r.PushMerge(3, 2, sameParity) // merges into 1 -> 4
	r.PushMerge(5, 2, sameParity) // 4 is even: pushed
	r.PushMerge(7, 2, sameParity) // merges into 5 -> 12
	got := r.Snapshot()
	if len(got) != 2 || got[0] != 4 || got[1] != 12 {
		t.Fatalf("snapshot = %v, want [4 12]", got)
	}
	if r.Total() != 4 {
		t.Fatalf("total = %d, want every merged event counted", r.Total())
	}
	// Lookback reaches past the newest entry, and indexing stays correct
	// after the ring wraps.
	for _, v := range []int{2, 9, 11} {
		r.Push(v) // ring now holds [12 2 9 11] wrapped past [4]
	}
	r.PushMerge(6, 3, sameParity) // skips 11 and 9, merges into 2 -> 8
	got = r.Snapshot()
	if len(got) != 4 || got[1] != 8 {
		t.Fatalf("wrapped merge snapshot = %v, want 2 absorbed to 8", got)
	}
	var nilRing *Ring[int]
	nilRing.PushMerge(1, 2, sameParity)
	if nilRing.Total() != 0 {
		t.Fatal("nil ring recorded a merged push")
	}
}

func TestRingDefaultCap(t *testing.T) {
	r := NewRing[int](0)
	if r.Cap() != DefaultRingCap {
		t.Fatalf("cap = %d, want DefaultRingCap", r.Cap())
	}
	var zero Ring[int]
	zero.Push(1) // zero-value ring adopts the default cap rather than dropping
	if zero.Cap() != DefaultRingCap || zero.Len() != 1 {
		t.Fatalf("zero-value ring cap=%d len=%d", zero.Cap(), zero.Len())
	}
}
