package obs

// The flight recorder: always-on, fixed-size ring buffers for the three
// observability streams (DLT records, spans, metric deltas) plus a
// platform-history ring (escalations, degradations, mode changes). The
// rings are bounded and allocation-free once full, so a platform keeps
// one attached for its whole life — like an automotive event-data
// recorder, the last seconds before an incident are always available,
// and a diagnostic bundle (bundle.go) is a serialized Snapshot.

// SpanEvent is one flight-recorded interval or instant. Platform task
// lifecycle events record as instants (Start == End); pipeline tracer
// spans record with real durations; spans still open at snapshot time
// carry Open. A burst of identical instants coalesces into one event
// whose Count is the number of occurrences (zero means one) and whose
// Start..End brackets the burst — so a fault storm neither churns the
// ring nor evicts the surrounding context.
type SpanEvent struct {
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns"`
	Kind   string `json:"kind,omitempty"`
	Detail string `json:"detail,omitempty"`
	Open   bool   `json:"open,omitempty"`
	Count  int    `json:"count,omitempty"`
}

// MetricDelta is one flight-recorded counter increment, observed between
// two sampler grid points.
type MetricDelta struct {
	At     int64   `json:"at_ns"`
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Delta  float64 `json:"delta"`
}

// HistoryEvent is one entry of the platform history: an escalation
// attempt, a degradation transition, a safe stop — the audit trail a
// bundle preserves even when the DLT ring has wrapped past it.
type HistoryEvent struct {
	At     int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// FlightConfig sizes the flight recorder's rings. Zero values select the
// defaults; negative values are treated as the default too (a ring of
// zero slots would silently record nothing).
type FlightConfig struct {
	// DLTCap bounds the DLT ring (default 2048 records).
	DLTCap int
	// DLTMin is the minimum level kept in the DLT ring (default
	// LevelInfo — debug chatter does not belong in a black box).
	DLTMin Level
	// SpanCap bounds the span ring (default 1024).
	SpanCap int
	// DeltaCap bounds the metric-delta ring (default 1024).
	DeltaCap int
	// HistoryCap bounds the history ring (default 256).
	HistoryCap int
}

// Default flight ring capacities.
const (
	DefaultFlightDLTCap     = 2048
	DefaultFlightSpanCap    = 1024
	DefaultFlightDeltaCap   = 1024
	DefaultFlightHistoryCap = 256
)

func (c FlightConfig) fill() FlightConfig {
	if c.DLTCap <= 0 {
		c.DLTCap = DefaultFlightDLTCap
	}
	if c.DLTMin == 0 {
		c.DLTMin = LevelInfo
	}
	if c.SpanCap <= 0 {
		c.SpanCap = DefaultFlightSpanCap
	}
	if c.DeltaCap <= 0 {
		c.DeltaCap = DefaultFlightDeltaCap
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = DefaultFlightHistoryCap
	}
	return c
}

// Flight is the flight recorder. DLT is a bounded ring-mode Log the
// platform emits into directly; spans, metric deltas and history feed
// through the push methods. Safe for concurrent use. A nil *Flight is
// valid and records nothing, so an instrumented platform can run with
// the recorder disabled at zero cost.
//
//autovet:nilsafe
type Flight struct {
	// DLT is the bounded structured event log (NewBoundedLog).
	DLT *Log

	spans   *Ring[SpanEvent]
	deltas  *Ring[MetricDelta]
	history *Ring[HistoryEvent]
}

// FlightView is one consistent cut of the flight recorder: every ring's
// retained entries oldest-first, plus the all-time totals that tell how
// much history the caps discarded.
type FlightView struct {
	DLT        []LogRecord    `json:"dlt,omitempty"`
	DLTTotal   uint64         `json:"dlt_total"`
	Spans      []SpanEvent    `json:"spans,omitempty"`
	SpanTotal  uint64         `json:"span_total"`
	Deltas     []MetricDelta  `json:"deltas,omitempty"`
	DeltaTotal uint64         `json:"delta_total"`
	History    []HistoryEvent `json:"history,omitempty"`
}

// NewFlight returns a flight recorder sized by cfg (zero value: defaults).
func NewFlight(cfg FlightConfig) *Flight {
	cfg = cfg.fill()
	return &Flight{
		DLT:     NewBoundedLog(cfg.DLTMin, cfg.DLTCap),
		spans:   NewRing[SpanEvent](cfg.SpanCap),
		deltas:  NewRing[MetricDelta](cfg.DeltaCap),
		history: NewRing[HistoryEvent](cfg.HistoryCap),
	}
}

// Span records one span event. Safe on a nil receiver (discards).
func (f *Flight) Span(e SpanEvent) {
	if f == nil {
		return
	}
	f.spans.Push(e)
}

// instantLookback bounds the coalescing scan of Instant: a storm that
// interleaves a handful of sources (CAN messages losing arbitration in
// turn, say) still folds per source, while the scan stays O(1).
const instantLookback = 4

// mergeInstant absorbs an instant into a retained identical one: the
// burst's Count grows and its End stretches to the newest occurrence.
func mergeInstant(prev *SpanEvent, v SpanEvent) bool {
	if prev.Open || prev.Name != v.Name || prev.Kind != v.Kind || prev.Detail != v.Detail {
		return false
	}
	if prev.Count == 0 {
		prev.Count = 1
	}
	prev.Count++
	prev.End = v.End
	return true
}

// Instant records an instantaneous span event (Start == End == at).
// Identical instants repeated in a burst coalesce into one counted
// event (see SpanEvent). Safe on a nil receiver (discards).
func (f *Flight) Instant(at int64, name, kind, detail string) {
	if f == nil {
		return
	}
	f.spans.PushMerge(SpanEvent{Name: name, Start: at, End: at, Kind: kind, Detail: detail},
		instantLookback, mergeInstant)
}

// OnDelta records one counter increment; its signature matches
// SamplerOptions.OnDelta so a sampler feeds the delta ring directly.
// Safe on a nil receiver (discards).
func (f *Flight) OnDelta(at int64, name string, labels []Label, delta float64) {
	if f == nil {
		return
	}
	f.deltas.Push(MetricDelta{At: at, Name: name, Labels: labels, Delta: delta})
}

// Note records one history event. Safe on a nil receiver (discards).
func (f *Flight) Note(at int64, kind, detail string) {
	if f == nil {
		return
	}
	f.history.Push(HistoryEvent{At: at, Kind: kind, Detail: detail})
}

// History returns the retained history events oldest-first. Nil on a nil
// receiver.
func (f *Flight) History() []HistoryEvent {
	if f == nil {
		return nil
	}
	return f.history.Snapshot()
}

// Snapshot cuts a point-in-time view of every ring. Each ring is
// internally ordered and copied out, so the recorder keeps running while
// the view is inspected or serialized. Safe on a nil receiver (empty
// view).
func (f *Flight) Snapshot() FlightView {
	if f == nil {
		return FlightView{}
	}
	return FlightView{
		DLT:        f.DLT.Records(),
		DLTTotal:   f.DLT.Total(),
		Spans:      f.spans.Snapshot(),
		SpanTotal:  f.spans.Total(),
		Deltas:     f.deltas.Snapshot(),
		DeltaTotal: f.deltas.Total(),
		History:    f.history.Snapshot(),
	}
}
