package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one non-empty histogram bucket in a snapshot:
// observations with value <= UpperBound (cumulative counts are derived
// by the exporters).
type BucketCount struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// Sample is the frozen state of one series at snapshot time.
type Sample struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`

	// Value carries counters (exact integer as float64) and gauges.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64        `json:"count,omitempty"`
	Sum     int64         `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot freezes every registered series into a deterministic list:
// sorted by name, then by label sets. Pull-style series invoke their
// reader functions here, on the snapshotting goroutine.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.all...)
	r.mu.Unlock()
	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Help: m.help, Labels: m.labels, Kind: m.kind.String()}
		switch {
		case m.counterFn != nil:
			s.Value = float64(m.counterFn())
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Value())
		case m.hist != nil:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			for i := range m.hist.buckets {
				if n := m.hist.buckets[i].Load(); n > 0 {
					s.Buckets = append(s.Buckets, BucketCount{UpperBound: BucketBound(i), Count: n})
				}
			}
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// labelString renders labels in Prometheus exposition form, empty for no
// labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// newline only (quotes stay literal in HELP lines).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// mergeLabels appends extra to labels without mutating either.
func mergeLabels(labels []Label, extra Label) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, extra)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per metric name, histogram
// series expanded into cumulative _bucket/_sum/_count.
func WritePrometheus(w io.Writer, samples []Sample) error {
	lastName := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastName {
			lastName = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if s.Kind == KindHistogram.String() {
			cum := uint64(0)
			for _, b := range s.Buckets {
				cum += b.Count
				le := mergeLabels(s.Labels, Label{Key: "le", Value: strconv.FormatInt(b.UpperBound, 10)})
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(le), cum); err != nil {
					return err
				}
			}
			inf := mergeLabels(s.Labels, Label{Key: "le", Value: "+Inf"})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(inf), s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, labelString(s.Labels), s.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders integers without an exponent and everything else
// in the shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders a snapshot as indented JSON — the machine-readable
// sibling of the Prometheus exposition, for diffing and scripting.
func WriteJSON(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(samples)
}
