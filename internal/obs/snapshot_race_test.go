package obs_test

// Snapshot consistency under concurrent writers: par workers hammer
// counters, histograms, the flight DLT and the span/delta rings while
// the main goroutine cuts registry and flight snapshots. Run under
// `go test -race` (make check does) this doubles as a data-race proof;
// the assertions below catch torn reads and non-monotonic counters even
// without the race detector.

import (
	"strconv"
	"sync/atomic"
	"testing"

	"autorte/internal/obs"
	"autorte/internal/par"
)

func TestSnapshotConsistencyUnderConcurrentWriters(t *testing.T) {
	const (
		workers = 8
		jobs    = 64
		perJob  = 200
	)
	reg := obs.NewRegistry()
	counter := reg.Counter("hammer_total", "concurrent increments")
	hist := reg.Histogram("hammer_ns", "concurrent observations")
	flight := obs.NewFlight(obs.FlightConfig{DLTCap: 256, SpanCap: 128, DeltaCap: 128, DLTMin: obs.LevelVerbose})

	var stop atomic.Bool
	snapshotsDone := make(chan int)
	go func() {
		cuts := 0
		var lastCounter float64
		for !stop.Load() {
			for _, s := range reg.Snapshot() {
				if s.Name != "hammer_total" {
					continue
				}
				// Counters are monotonic: a snapshot may lag but never
				// run backwards, and never shows a torn (non-integer)
				// value.
				if s.Value < lastCounter {
					t.Errorf("counter went backwards: %v -> %v", lastCounter, s.Value)
				}
				if s.Value != float64(uint64(s.Value)) {
					t.Errorf("torn counter read: %v", s.Value)
				}
				lastCounter = s.Value
			}
			v := flight.Snapshot()
			if len(v.DLT) > 256 || len(v.Spans) > 128 || len(v.Deltas) > 128 {
				t.Errorf("ring overflow: dlt=%d spans=%d deltas=%d", len(v.DLT), len(v.Spans), len(v.Deltas))
			}
			if uint64(len(v.DLT)) > v.DLTTotal {
				t.Errorf("retained %d DLT records but total is %d", len(v.DLT), v.DLTTotal)
			}
			cuts++
		}
		snapshotsDone <- cuts
	}()

	err := par.ForEach(workers, jobs, func(i int) error {
		for k := 0; k < perJob; k++ {
			counter.Inc()
			hist.Observe(int64(k + 1))
			// Unique payloads per event: identical records would
			// burst-suppress/coalesce instead of wrapping the rings.
			uniq := strconv.Itoa(i*perJob + k)
			flight.DLT.Emit(int64(k), obs.LevelInfo, "TEST", "RACE", uniq)
			flight.Instant(int64(k), "hammer", "test", uniq)
			flight.OnDelta(int64(k), "hammer_total", nil, 1)
		}
		return nil
	})
	stop.Store(true)
	cuts := <-snapshotsDone
	if err != nil {
		t.Fatal(err)
	}
	if cuts == 0 {
		t.Log("no snapshot cut concurrently (machine too fast/slow); final checks still apply")
	}

	const want = jobs * perJob
	if got := counter.Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := hist.Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	v := flight.Snapshot()
	if v.DLTTotal != want || v.SpanTotal != want || v.DeltaTotal != want {
		t.Fatalf("flight totals = %d/%d/%d, want %d", v.DLTTotal, v.SpanTotal, v.DeltaTotal, want)
	}
	if len(v.DLT) != 256 || len(v.Spans) != 128 || len(v.Deltas) != 128 {
		t.Fatalf("rings not at cap: %d/%d/%d", len(v.DLT), len(v.Spans), len(v.Deltas))
	}
}
