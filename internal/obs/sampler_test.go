package obs

import "testing"

func TestNilSamplerNoops(t *testing.T) {
	var s *Sampler
	s.Sample(100)
	if s.Samples() != 0 || s.Series() != nil {
		t.Fatal("nil sampler recorded something")
	}
	// A sampler over a nil registry is equally inert.
	s2 := NewSampler(nil, SamplerOptions{})
	s2.Sample(100)
	if s2.Samples() != 0 {
		t.Fatal("sampler over nil registry took a sample")
	}
}

func TestSamplerGridAndKinds(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("errs_total", "errors", Label{Key: "task", Value: "t1"})
	g := reg.Gauge("level", "degradation level")
	h := reg.Histogram("lat_ns", "latency")

	s := NewSampler(reg, SamplerOptions{})
	c.Inc()
	g.Set(1)
	h.Observe(100)
	s.Sample(1000)
	c.Add(2)
	g.Set(3)
	h.Observe(200)
	s.Sample(2000)

	if s.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", s.Samples())
	}
	series := s.Series()
	byName := map[string]Series{}
	for _, sr := range series {
		byName[sr.Name] = sr
	}
	// Histogram expands into _count and _sum series.
	for _, name := range []string{"errs_total", "level", "lat_ns_count", "lat_ns_sum"} {
		sr, ok := byName[name]
		if !ok {
			t.Fatalf("series %q missing (have %d series)", name, len(series))
		}
		if len(sr.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", name, len(sr.Points))
		}
		if sr.Points[0].At != 1000 || sr.Points[1].At != 2000 {
			t.Fatalf("series %q grid = %+v", name, sr.Points)
		}
	}
	if got := byName["errs_total"].Points[1].Value; got != 3 {
		t.Fatalf("counter point = %v, want 3", got)
	}
	if got := byName["level"].Points[1].Value; got != 3 {
		t.Fatalf("gauge point = %v, want 3", got)
	}
	if got := byName["lat_ns_sum"].Points[1].Value; got != 300 {
		t.Fatalf("hist sum point = %v, want 300", got)
	}
	if got := byName["errs_total"].Labels; len(got) != 1 || got[0].Value != "t1" {
		t.Fatalf("labels not carried: %+v", got)
	}
}

func TestSamplerMatchAndDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("want_total", "kept")
	reg.Counter("skip_total", "filtered")

	type delta struct {
		at    int64
		name  string
		delta float64
	}
	var deltas []delta
	s := NewSampler(reg, SamplerOptions{
		Match: func(name string) bool { return name == "want_total" },
		OnDelta: func(at int64, name string, _ []Label, d float64) {
			deltas = append(deltas, delta{at, name, d})
		},
	})
	s.Sample(10)
	c.Add(5)
	s.Sample(20)
	s.Sample(30) // no increment: no delta fired

	if got := len(s.Series()); got != 1 {
		t.Fatalf("series count = %d, want 1 (match filter)", got)
	}
	if len(deltas) != 1 || deltas[0] != (delta{20, "want_total", 5}) {
		t.Fatalf("deltas = %+v, want one of 5 at t=20", deltas)
	}
}

func TestSamplerMaxPoints(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "")
	s := NewSampler(reg, SamplerOptions{MaxPoints: 3})
	for i := 1; i <= 5; i++ {
		g.Set(int64(i))
		s.Sample(int64(i * 100))
	}
	sr := s.Series()[0]
	if len(sr.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(sr.Points))
	}
	if sr.Points[0].At != 300 || sr.Points[2].At != 500 {
		t.Fatalf("kept wrong window: %+v", sr.Points)
	}
}

func TestSeriesKeyDistinguishesLabels(t *testing.T) {
	a := Series{Name: "m", Labels: []Label{{Key: "k", Value: "1"}}}
	b := Series{Name: "m", Labels: []Label{{Key: "k", Value: "2"}}}
	if a.Key() == b.Key() {
		t.Fatal("series keys collide across label values")
	}
}
