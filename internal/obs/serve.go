package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// ServeOptions wires a live observability endpoint to a running
// platform's instruments. Any field may be nil; the corresponding
// endpoint degrades gracefully (empty scrape, empty tail, 404 bundle).
type ServeOptions struct {
	// Registry backs /metrics (Prometheus text) and /metrics.json.
	Registry *Registry
	// DLT backs /dlt (dump) and /dlt?follow=1 (live tail).
	DLT *Log
	// Bundle, when set, backs /bundle: it cuts an on-demand diagnostic
	// bundle which is served as a gzipped download.
	Bundle func(reason string) *Bundle
}

// NewServeHandler returns the HTTP handler behind `autodiag -serve`: a
// Prometheus scrape endpoint, DLT dump + live tail, and on-demand
// bundle download. The handler holds no clock and spawns no goroutines;
// all timing comes from the HTTP client and the platform feeding the
// instruments.
func NewServeHandler(opt ServeOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "autodiag live endpoint\n\n"+
			"  /metrics       Prometheus text scrape\n"+
			"  /metrics.json  JSON metric snapshot\n"+
			"  /dlt           retained DLT records (text; ?format=json for JSON lines)\n"+
			"  /dlt?follow=1  live DLT tail (JSON lines, streamed)\n"+
			"  /bundle        cut and download a diagnostic bundle\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, opt.Registry.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, opt.Registry.Snapshot())
	})
	mux.HandleFunc("/dlt", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("follow") != "" {
			followDLT(w, r, opt.DLT)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			opt.DLT.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		opt.DLT.WriteText(w)
	})
	mux.HandleFunc("/bundle", func(w http.ResponseWriter, r *http.Request) {
		if opt.Bundle == nil {
			http.Error(w, "no bundle source attached", http.StatusNotFound)
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "on-demand"
		}
		b := opt.Bundle(reason)
		if b == nil {
			http.Error(w, "bundle source returned nothing", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", `attachment; filename="autodiag.bundle"`)
		b.Write(w)
	})
	return mux
}

// followDLT streams records kept after connect as JSON lines, one per
// record, flushed per record, until the client disconnects or the
// subscription closes. Records present before connect are not replayed —
// use the plain dump for those.
func followDLT(w http.ResponseWriter, r *http.Request, l *Log) {
	ch, cancel := l.Subscribe(256)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	var sb strings.Builder
	for {
		select {
		case rec, ok := <-ch:
			if !ok {
				return
			}
			sb.Reset()
			fmt.Fprintf(&sb, `{"at_ns":%d,"level":%q,"app":%q,"ctx":%q,"msg":%q}`+"\n",
				rec.At, rec.Level.String(), rec.App, rec.Ctx, rec.Msg)
			if _, err := fmt.Fprint(w, sb.String()); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
