// Package obs is the platform's observability layer: a dependency-free
// metrics core (counters, gauges, log-bucketed histograms with
// allocation-free updates and deterministic snapshots), a structured
// event log modeled on AUTOSAR DLT (internal/obs/log.go), and span-style
// tracing exportable as Chrome trace-event JSON (internal/obs/span.go,
// internal/obs/chrome.go).
//
// The substrate packages (sched, can, flexray, par, sim, rte, deploy,
// core) expose their hidden state — cache hit rates, pool occupancy,
// kernel event counts, error reports, DSE move counters, pipeline stage
// durations — through Observe hooks that register into a Registry; the
// CLIs export the result as Prometheus text exposition or JSON.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. Updates are single atomic
// adds: allocation-free and safe for concurrent use. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// histBuckets is the number of histogram buckets: bucket 0 holds values
// <= 0 and bucket i (1..64) holds values v with 2^(i-1) <= v < 2^i.
const histBuckets = 65

// Histogram counts observations in fixed log2-scale buckets — the
// classic latency-histogram shape, covering 1ns to ~9.2s-in-ns (and any
// other int64-valued sample) without configuration. Observations are two
// atomic adds plus one atomic increment: allocation-free. The zero value
// is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// BucketBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i - 1 for buckets 1..63, and MaxInt64 for the last bucket.
func BucketBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= histBuckets-1:
		return int64(^uint64(0) >> 1) // MaxInt64
	default:
		return int64(1)<<i - 1
	}
}

// Label is one metric dimension, e.g. {Key: "stage", Value: "ecu"}.
type Label struct{ Key, Value string }

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// pull-style readers; at most one is set, taking precedence over the
	// push-style fields above.
	counterFn func() uint64
	gaugeFn   func() float64
}

// key returns the identity of the series: name plus sorted labels.
func seriesKey(name string, labels []Label) string {
	k := name
	for _, l := range labels {
		k += "\xff" + l.Key + "\xfe" + l.Value
	}
	return k
}

// Registry holds named metrics. Registration is idempotent: asking for
// the same (name, labels) series again returns the existing instrument,
// so independent layers can share a registry without coordination.
// Registration takes a lock; updates on the returned instruments do not.
// A nil *Registry is valid and records nothing.
//
//autovet:nilsafe
type Registry struct {
	mu    sync.Mutex
	index map[string]*metric
	//autovet:bounded one entry per distinct series key, deduped via index
	all []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}}
}

// register returns the existing series or creates it via make. Mixing
// kinds under one series key panics: it is a programming error that
// would silently corrupt the export otherwise.
func (r *Registry) register(name, help string, kind Kind, labels []Label, create func(*metric)) *metric {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := seriesKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered as a different kind")
		}
		return m
	}
	m := &metric{name: name, help: help, labels: sorted, kind: kind}
	//autovet:allow lockorder create is the registry's own field-initializer closure, not user code
	create(m)
	r.index[key] = m
	r.all = append(r.all, m)
	return m
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{} // live but unregistered: updates are discarded
	}
	m := r.register(name, help, KindCounter, labels, func(m *metric) { m.counter = &Counter{} })
	return m.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	m := r.register(name, help, KindGauge, labels, func(m *metric) { m.gauge = &Gauge{} })
	return m.gauge
}

// Histogram returns the histogram for (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	m := r.register(name, help, KindHistogram, labels, func(m *metric) { m.hist = &Histogram{} })
	return m.hist
}

// CounterFunc registers a pull-style counter: fn is read at snapshot
// time. Use it to surface counters a substrate already maintains (cache
// hits, kernel event counts) without double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, KindCounter, labels, func(m *metric) { m.counterFn = fn })
}

// GaugeFunc registers a pull-style gauge read at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, KindGauge, labels, func(m *metric) { m.gaugeFn = fn })
}
