package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

func TestNilChromeStream(t *testing.T) {
	var cs *ChromeStream
	if err := cs.Add(TraceEvent{}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if cs.Events() != 0 {
		t.Fatal("nil stream counted events")
	}
}

// countingWriter tracks the largest single Write to prove the stream
// never buffers the whole trace.
type countingWriter struct {
	n        int
	maxWrite int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	if len(p) > c.maxWrite {
		c.maxWrite = len(p)
	}
	return len(p), nil
}

func TestChromeStreamLargeTrace(t *testing.T) {
	const n = 10_500
	var buf bytes.Buffer
	cw := &countingWriter{}
	cs := NewChromeStream(io.MultiWriter(&buf, cw))
	for i := 0; i < n; i++ {
		ev := TraceEvent{Name: "task", Phase: "X", TS: float64(i), Dur: 1, PID: 1, TID: int64(i % 7)}
		if i%5 == 0 {
			ev = TraceEvent{Name: "mark", Phase: "i", TS: float64(i), PID: 1, TID: 1, Scope: "t"}
		}
		if err := cs.Add(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if cs.Events() != n {
		t.Fatalf("events = %d, want %d", cs.Events(), n)
	}
	// Streaming: no single write should approach the full document size.
	if cw.maxWrite > 4096 {
		t.Fatalf("largest single write = %d bytes — trace was buffered, not streamed", cw.maxWrite)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("streamed trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != n || doc.DisplayUnit != "ms" {
		t.Fatalf("decoded %d events, unit %q", len(doc.TraceEvents), doc.DisplayUnit)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatal("empty trace has events")
	}
}

type failAfterWriter struct {
	left int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errors.New("disk full")
	}
	f.left--
	return len(p), nil
}

func TestChromeStreamErrorSticks(t *testing.T) {
	cs := NewChromeStream(&failAfterWriter{left: 2})
	var firstErr error
	for i := 0; i < 5; i++ {
		if err := cs.Add(TraceEvent{Name: "x", Phase: "X"}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		t.Fatal("write error not surfaced")
	}
	if err := cs.Close(); err == nil {
		t.Fatal("Close lost the sticky error")
	}
}
