package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition output byte-for-byte for a
// registry exercising every metric kind, label escaping (backslash,
// quote, newline) and HELP escaping. Determinism across runs is the
// point: family and label-set order must not depend on registration or
// map order.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	// Registered deliberately out of name order.
	reg.Gauge("zz_level", "current level").Set(2)
	reg.Counter("aa_total", "count with \\ and \"quotes\" and\nnewline",
		Label{Key: "path", Value: `C:\tmp`},
		Label{Key: "msg", Value: "say \"hi\"\nbye"},
	).Add(7)
	reg.Counter("aa_total", "count with \\ and \"quotes\" and\nnewline",
		Label{Key: "path", Value: "/a"},
		Label{Key: "msg", Value: "plain"},
	).Add(1)
	h := reg.Histogram("hh_ns", "latency")
	h.Observe(1)
	h.Observe(3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP aa_total count with \\ and "quotes" and\nnewline
# TYPE aa_total counter
aa_total{msg="plain",path="/a"} 1
aa_total{msg="say \"hi\"\nbye",path="C:\\tmp"} 7
# HELP hh_ns latency
# TYPE hh_ns histogram
hh_ns_bucket{le="1"} 1
hh_ns_bucket{le="3"} 2
hh_ns_bucket{le="+Inf"} 2
hh_ns_sum 4
hh_ns_count 2
# HELP zz_level current level
# TYPE zz_level gauge
zz_level 2
`
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJSONExportDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "b").Inc()
	reg.Counter("a_total", "a").Inc()
	var first bytes.Buffer
	if err := WriteJSON(&first, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteJSON(&second, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("JSON export not stable across snapshots")
	}
	var samples []Sample
	if err := json.Unmarshal(first.Bytes(), &samples); err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].Name != "a_total" {
		t.Fatalf("JSON export unsorted: %+v", samples)
	}
}

func TestEscapeHelp(t *testing.T) {
	if got := escapeHelp("a\\b\nc\"d"); got != `a\\b\nc"d` {
		t.Fatalf("escapeHelp = %q", got)
	}
	if !strings.Contains(labelString([]Label{{Key: "k", Value: "\n"}}), `\n`) {
		t.Fatal("label newline not escaped")
	}
}
