package obs

import (
	"strings"
	"testing"
)

func TestNilFlightDiscards(t *testing.T) {
	var f *Flight
	f.Span(SpanEvent{Name: "x"})
	f.Instant(1, "x", "k", "d")
	f.OnDelta(1, "c", nil, 1)
	f.Note(1, "escalation", "rung 2")
	if got := f.History(); got != nil {
		t.Fatalf("nil flight history = %v", got)
	}
	v := f.Snapshot()
	if v.DLT != nil || v.Spans != nil || v.Deltas != nil || v.History != nil {
		t.Fatal("nil flight snapshot not empty")
	}
	// The embedded DLT pointer on a nil flight is unreachable, but a
	// zero-value view must also emit safely.
	if v.DLTTotal != 0 || v.SpanTotal != 0 {
		t.Fatal("nil flight snapshot has totals")
	}
}

func TestFlightDefaultsAndSnapshot(t *testing.T) {
	f := NewFlight(FlightConfig{})
	if f.DLT.Cap() != DefaultFlightDLTCap {
		t.Fatalf("dlt cap = %d, want %d", f.DLT.Cap(), DefaultFlightDLTCap)
	}
	// Default DLT floor is info: debug must be filtered.
	f.DLT.Emit(10, LevelDebug, "APP", "CTX", "chatter")
	f.DLT.Emit(20, LevelWarn, "APP", "CTX", "kept")
	f.Span(SpanEvent{Name: "task", Start: 5, End: 15, Kind: "finish"})
	f.Instant(30, "miss", "miss", "deadline")
	f.OnDelta(40, "errors_total", []Label{{Key: "task", Value: "t"}}, 2)
	f.Note(50, "degradation", "normal->degraded")

	v := f.Snapshot()
	if len(v.DLT) != 1 || v.DLT[0].Msg != "kept" {
		t.Fatalf("dlt = %+v, want only the warn record", v.DLT)
	}
	if v.DLTTotal != 1 {
		t.Fatalf("dlt total = %d, want 1 (debug filtered, not counted)", v.DLTTotal)
	}
	if len(v.Spans) != 2 || v.SpanTotal != 2 {
		t.Fatalf("spans = %+v total=%d", v.Spans, v.SpanTotal)
	}
	if v.Spans[1].Start != 30 || v.Spans[1].End != 30 {
		t.Fatalf("instant span = %+v, want start==end==30", v.Spans[1])
	}
	if len(v.Deltas) != 1 || v.Deltas[0].Delta != 2 {
		t.Fatalf("deltas = %+v", v.Deltas)
	}
	if len(v.History) != 1 || v.History[0].Kind != "degradation" {
		t.Fatalf("history = %+v", v.History)
	}
}

func TestFlightRingsBound(t *testing.T) {
	f := NewFlight(FlightConfig{DLTCap: 4, SpanCap: 3, DeltaCap: 2, HistoryCap: 2, DLTMin: LevelVerbose})
	msgs := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8", "m9"}
	for i := 0; i < 10; i++ {
		// Distinct messages: identical ones would burst-suppress instead
		// of exercising the ring bound.
		f.DLT.Emit(int64(i), LevelInfo, "A", "C", msgs[i])
		// Span, not Instant: identical instants would coalesce instead of
		// exercising the ring bound.
		f.Span(SpanEvent{Name: "s", Start: int64(i), End: int64(i)})
		f.OnDelta(int64(i), "c", nil, 1)
		f.Note(int64(i), "k", "d")
	}
	v := f.Snapshot()
	if len(v.DLT) != 4 || v.DLT[0].At != 6 {
		t.Fatalf("dlt ring = %d records, first at %d", len(v.DLT), v.DLT[0].At)
	}
	if len(v.Spans) != 3 || len(v.Deltas) != 2 || len(v.History) != 2 {
		t.Fatalf("ring lens = %d/%d/%d", len(v.Spans), len(v.Deltas), len(v.History))
	}
	if v.SpanTotal != 10 || v.DeltaTotal != 10 {
		t.Fatalf("totals = %d/%d, want 10/10", v.SpanTotal, v.DeltaTotal)
	}
}

// TestFlightInstantCoalesces: a storm of identical instants folds into
// one counted burst event instead of churning (and flooding) the span
// ring, and the burst interleaving a few sources still folds per source.
func TestFlightInstantCoalesces(t *testing.T) {
	f := NewFlight(FlightConfig{SpanCap: 8})
	for i := 0; i < 500; i++ {
		f.Instant(int64(i), "Cmd", "drop", "arbitration lost")
		f.Instant(int64(i), "Tele", "drop", "arbitration lost")
	}
	f.Instant(1000, "Sensor.sample", "abort", "budget exhausted")
	v := f.Snapshot()
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %+v, want two coalesced bursts and one abort", v.Spans)
	}
	if v.SpanTotal != 1001 {
		t.Fatalf("span total = %d, want every occurrence counted", v.SpanTotal)
	}
	for _, sp := range v.Spans[:2] {
		if sp.Count != 500 || sp.Start != 0 || sp.End != 499 {
			t.Fatalf("burst = %+v, want count 500 spanning 0..499", sp)
		}
	}
	if v.Spans[2].Kind != "abort" || v.Spans[2].Count != 0 {
		t.Fatalf("abort = %+v, want a plain single instant", v.Spans[2])
	}
}

func TestLogSubscribe(t *testing.T) {
	l := NewBoundedLog(LevelInfo, 8)
	// Records before subscribe are not replayed.
	l.Emit(1, LevelInfo, "A", "C", "before")
	ch, cancel := l.Subscribe(4)
	l.Emit(2, LevelInfo, "A", "C", "after")
	rec := <-ch
	if rec.Msg != "after" {
		t.Fatalf("tail got %q, want the post-subscribe record", rec.Msg)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	// Emitting after cancel must not panic or block.
	l.Emit(3, LevelInfo, "A", "C", "late")
	cancel() // idempotent

	var nilLog *Log
	nch, ncancel := nilLog.Subscribe(1)
	if _, ok := <-nch; ok {
		t.Fatal("nil log subscription delivered a record")
	}
	ncancel()
}

func TestLogSubscribeDropsWhenFull(t *testing.T) {
	l := NewLog(LevelInfo)
	ch, cancel := l.Subscribe(1)
	defer cancel()
	l.Emit(1, LevelInfo, "A", "C", "one")
	l.Emit(2, LevelInfo, "A", "C", "two") // buffer full: dropped, not blocking
	rec := <-ch
	if rec.Msg != "one" {
		t.Fatalf("got %q, want first record", rec.Msg)
	}
	select {
	case rec := <-ch:
		t.Fatalf("unexpected second delivery %q", rec.Msg)
	default:
	}
}

// TestBoundedLogRepeatSuppression: a storm of identical (or two
// alternating) messages folds into counted records in ring mode instead
// of churning the ring, while a distinct message still appends and live
// subscribers see every raw emission.
func TestBoundedLogRepeatSuppression(t *testing.T) {
	l := NewBoundedLog(LevelInfo, 8)
	ch, cancel := l.Subscribe(16)
	defer cancel()
	for i := 0; i < 5; i++ {
		l.Emit(int64(i), LevelError, "RTE", "ERR", "stale chain input")
		l.Emit(int64(i), LevelError, "RTE", "ERR", "implausible chain input")
	}
	l.Emit(100, LevelWarn, "HLTH", "ESCL", "rung 1")
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %+v, want two suppressed bursts and one distinct", recs)
	}
	if recs[0].Repeat != 5 || recs[0].At != 0 || recs[1].Repeat != 5 {
		t.Fatalf("bursts = %+v, want repeat 5 keeping the first At", recs[:2])
	}
	if recs[2].Repeat != 0 {
		t.Fatalf("distinct record carries repeat %d", recs[2].Repeat)
	}
	if l.Total() != 11 {
		t.Fatalf("total = %d, want every suppressed emission counted", l.Total())
	}
	if len(ch) != 11 {
		t.Fatalf("subscriber saw %d records, want all 11 raw emissions", len(ch))
	}
	// An unbounded log keeps full fidelity: suppression is a black-box
	// storage policy, not a logging semantics change.
	u := NewLog(LevelInfo)
	u.Emit(1, LevelInfo, "A", "C", "same")
	u.Emit(2, LevelInfo, "A", "C", "same")
	if got := u.Records(); len(got) != 2 {
		t.Fatalf("unbounded log suppressed: %+v", got)
	}
}

func TestBoundedLogWrap(t *testing.T) {
	l := NewBoundedLog(LevelVerbose, 3)
	for i := 0; i < 7; i++ {
		l.Emit(int64(i), LevelInfo, "A", "C", strings.Repeat("x", i+1))
	}
	recs := l.Records()
	if len(recs) != 3 || recs[0].At != 4 || recs[2].At != 6 {
		t.Fatalf("ring records = %+v", recs)
	}
	if l.Total() != 7 || l.Len() != 3 || l.Cap() != 3 {
		t.Fatalf("total=%d len=%d cap=%d", l.Total(), l.Len(), l.Cap())
	}
}
