package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Level grades log records, mirroring AUTOSAR DLT's log levels.
type Level uint8

// DLT log levels, most severe last.
const (
	LevelVerbose Level = iota
	LevelDebug
	LevelInfo
	LevelWarn
	LevelError
	LevelFatal
)

var levelNames = [...]string{"verbose", "debug", "info", "warn", "error", "fatal"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// LogRecord is one structured event: a virtual-time-stamped, leveled,
// source-tagged message. App and Ctx mirror DLT's application and
// context IDs — the coarse and fine origin of the event (e.g. app "RTE",
// ctx "ERR").
type LogRecord struct {
	At    int64  `json:"at_ns"` // virtual-time ns (or wall ns in offline tools)
	Level Level  `json:"-"`
	App   string `json:"app"`
	Ctx   string `json:"ctx"`
	Msg   string `json:"msg"`
}

// logRecordJSON is LogRecord with the level rendered as its name.
type logRecordJSON struct {
	LogRecord
	LevelName string `json:"level"`
}

// Log accumulates structured event records. A nil *Log is valid and
// discards everything — the same idiom as a nil *trace.Recorder — so
// substrates log unconditionally and pay nothing when observability is
// off. Safe for concurrent use.
//
//autovet:nilsafe
type Log struct {
	// Min drops records below this level at Emit time. The zero value
	// (LevelVerbose) keeps everything.
	Min Level

	mu      sync.Mutex
	records []LogRecord
	dropped uint64 // filtered below Min
}

// NewLog returns a log keeping records at or above min.
func NewLog(min Level) *Log { return &Log{Min: min} }

// Emit appends one record. Safe on a nil receiver (no-op).
func (l *Log) Emit(at int64, level Level, app, ctx, msg string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if level < l.Min {
		l.dropped++
		return
	}
	l.records = append(l.records, LogRecord{At: at, Level: level, App: app, Ctx: ctx, Msg: msg})
}

// Emitf is Emit with fmt formatting.
func (l *Log) Emitf(at int64, level Level, app, ctx, format string, args ...any) {
	if l == nil {
		return
	}
	l.Emit(at, level, app, ctx, fmt.Sprintf(format, args...))
}

// Len returns the number of kept records. Zero on a nil receiver.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Dropped returns how many records were filtered below Min.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Records returns a copy of the kept records, in emission order. Nil on
// a nil receiver.
func (l *Log) Records() []LogRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LogRecord(nil), l.records...)
}

// Count returns how many kept records are at or above level.
func (l *Log) Count(level Level) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, r := range l.records {
		if r.Level >= level {
			n++
		}
	}
	return n
}

// WriteText renders the log in a DLT-viewer-like fixed-column text form:
//
//	12.345678 RTE      ERR      error    Sensor.sample: ...
//
// The timestamp column is virtual seconds. Safe on a nil receiver.
func (l *Log) WriteText(w io.Writer) error {
	if l == nil {
		return nil
	}
	for _, r := range l.Records() {
		_, err := fmt.Fprintf(w, "%17.6f %-8s %-8s %-7s %s\n",
			float64(r.At)/1e9, r.App, r.Ctx, r.Level, r.Msg)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the log as JSON lines, one record per line. Safe on
// a nil receiver.
func (l *Log) WriteJSON(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		if err := enc.Encode(logRecordJSON{LogRecord: r, LevelName: r.Level.String()}); err != nil {
			return err
		}
	}
	return nil
}
