package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Level grades log records, mirroring AUTOSAR DLT's log levels.
type Level uint8

// DLT log levels, most severe last.
const (
	LevelVerbose Level = iota
	LevelDebug
	LevelInfo
	LevelWarn
	LevelError
	LevelFatal
)

var levelNames = [...]string{"verbose", "debug", "info", "warn", "error", "fatal"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseLevel maps a level name back to its Level (the inverse of
// String); ok is false for unknown names.
func ParseLevel(name string) (Level, bool) {
	for i, n := range levelNames {
		if n == name {
			return Level(i), true
		}
	}
	return 0, false
}

// LogRecord is one structured event: a virtual-time-stamped, leveled,
// source-tagged message. App and Ctx mirror DLT's application and
// context IDs — the coarse and fine origin of the event (e.g. app "RTE",
// ctx "ERR").
type LogRecord struct {
	At    int64  `json:"at_ns"` // virtual-time ns (or wall ns in offline tools)
	Level Level  `json:"level"` // numeric; WriteJSON shadows it with the level name
	App   string `json:"app"`
	Ctx   string `json:"ctx"`
	Msg   string `json:"msg"`
	// Repeat is the number of occurrences folded into this record by
	// ring-mode burst suppression (zero means one). At keeps the first
	// occurrence; live subscribers still see every emission.
	Repeat int `json:"repeat,omitempty"`
}

// logRecordJSON is LogRecord with the level rendered as its name.
type logRecordJSON struct {
	LogRecord
	LevelName string `json:"level"`
}

// Log accumulates structured event records. A nil *Log is valid and
// discards everything — the same idiom as a nil *trace.Recorder — so
// substrates log unconditionally and pay nothing when observability is
// off. Safe for concurrent use.
//
//autovet:nilsafe
type Log struct {
	// Min drops records below this level at Emit time. The zero value
	// (LevelVerbose) keeps everything.
	Min Level

	mu sync.Mutex
	//autovet:bounded ring mode caps retention; unbounded only for explicit host-side capture
	records []LogRecord
	dropped uint64 // filtered below Min
	// Ring mode (flight recorder): cap > 0 bounds the kept records to the
	// most recent cap, start is the ring read index once wrapped, total
	// counts every kept record ever emitted.
	cap     int
	start   int
	total   uint64
	subs    map[int]chan LogRecord
	nextSub int
}

// NewLog returns a log keeping records at or above min.
func NewLog(min Level) *Log { return &Log{Min: min} }

// NewBoundedLog returns a ring-mode log keeping at most cap of the most
// recent records at or above min — the flight-recorder flavour: always
// on, allocation-free once the ring is full, bounded memory no matter
// how long the run. cap <= 0 falls back to DefaultRingCap.
func NewBoundedLog(min Level, cap int) *Log {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &Log{Min: min, cap: cap}
}

// Emit appends one record. Safe on a nil receiver (no-op).
func (l *Log) Emit(at int64, level Level, app, ctx, msg string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if level < l.Min {
		l.dropped++
		return
	}
	rec := LogRecord{At: at, Level: level, App: app, Ctx: ctx, Msg: msg}
	l.total++
	switch {
	case l.cap > 0 && l.absorbRepeat(rec):
		// Burst suppressed into a recent record; subscribers below still
		// see the raw emission.
	case l.cap > 0 && len(l.records) >= l.cap:
		l.records[l.start] = rec
		l.start = (l.start + 1) % l.cap
	default:
		if l.cap > 0 && len(l.records) == cap(l.records) {
			// Ring mode grows explicitly — small first, doubling, never past
			// cap — so a quiet log stays tiny and a filling ring doesn't
			// churn append-overshoot garbage.
			n := 2 * cap(l.records)
			if n < 32 {
				n = 32
			}
			if n > l.cap {
				n = l.cap
			}
			grown := make([]LogRecord, len(l.records), n)
			copy(grown, l.records)
			l.records = grown
		}
		l.records = append(l.records, rec)
	}
	for _, ch := range l.subs {
		select {
		//autovet:allow lockorder non-blocking send; cancel closes ch under l.mu, so sending under the lock is exactly what makes it close-safe
		case ch <- rec:
		default: // a stalled tail must not block the platform
		}
	}
}

// logRepeatLookback bounds ring-mode burst suppression: a fault storm
// that alternates two messages (stale/implausible input, say) still
// folds, while the scan stays O(1) per emission.
const logRepeatLookback = 2

// absorbRepeat folds an emission identical to one of the newest kept
// records into that record's Repeat count — AUTOSAR DLT-style message
// burst suppression, so a storm neither churns the black-box ring nor
// evicts the context around it. Callers hold l.mu.
func (l *Log) absorbRepeat(rec LogRecord) bool {
	n := len(l.records)
	lookback := logRepeatLookback
	if lookback > n {
		lookback = n
	}
	for i := 0; i < lookback; i++ {
		// Newest-first: just before the wrap point once full, at the
		// slice end while still filling (start is 0 until then).
		prev := &l.records[(l.start-1-i+2*n)%n]
		if prev.Level == rec.Level && prev.App == rec.App && prev.Ctx == rec.Ctx && prev.Msg == rec.Msg {
			if prev.Repeat == 0 {
				prev.Repeat = 1
			}
			prev.Repeat++
			return true
		}
	}
	return false
}

// Emitf is Emit with fmt formatting.
func (l *Log) Emitf(at int64, level Level, app, ctx, format string, args ...any) {
	if l == nil {
		return
	}
	l.Emit(at, level, app, ctx, fmt.Sprintf(format, args...))
}

// Len returns the number of kept records. Zero on a nil receiver.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Dropped returns how many records were filtered below Min.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Total returns how many records were ever kept, including those the
// ring cap has since overwritten. Zero on a nil receiver.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Cap returns the ring capacity (0 means unbounded). Zero on a nil
// receiver.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cap
}

// Records returns a copy of the kept records, in emission order (the
// most recent cap records in ring mode). Nil on a nil receiver.
func (l *Log) Records() []LogRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogRecord, 0, len(l.records))
	out = append(out, l.records[l.start:]...)
	out = append(out, l.records[:l.start]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Subscribe registers a live tail: every record kept after this call is
// also sent to the returned channel (non-blocking — a full buffer drops
// the delivery rather than stall the emitter). The cancel function
// unsubscribes and closes the channel. On a nil receiver the channel is
// already closed and cancel is a no-op.
func (l *Log) Subscribe(buf int) (<-chan LogRecord, func()) {
	if l == nil {
		ch := make(chan LogRecord) //autovet:allow bounded closed immediately: the nil-receiver tail never carries a record
		close(ch)
		return ch, func() {}
	}
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan LogRecord, buf)
	l.mu.Lock()
	if l.subs == nil {
		l.subs = map[int]chan LogRecord{}
	}
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	return ch, func() {
		l.mu.Lock()
		if _, ok := l.subs[id]; ok {
			delete(l.subs, id)
			close(ch)
		}
		l.mu.Unlock()
	}
}

// Count returns how many kept records are at or above level.
func (l *Log) Count(level Level) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, r := range l.records {
		if r.Level >= level {
			n++
		}
	}
	return n
}

// WriteText renders the log in a DLT-viewer-like fixed-column text form:
//
//	12.345678 RTE      ERR      error    Sensor.sample: ...
//
// The timestamp column is virtual seconds. Safe on a nil receiver.
func (l *Log) WriteText(w io.Writer) error {
	if l == nil {
		return nil
	}
	for _, r := range l.Records() {
		_, err := fmt.Fprintf(w, "%17.6f %-8s %-8s %-7s %s\n",
			float64(r.At)/1e9, r.App, r.Ctx, r.Level, r.Msg)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the log as JSON lines, one record per line. Safe on
// a nil receiver.
func (l *Log) WriteJSON(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		if err := enc.Encode(logRecordJSON{LogRecord: r, LevelName: r.Level.String()}); err != nil {
			return err
		}
	}
	return nil
}
