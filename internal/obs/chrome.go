package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// array loaded by chrome://tracing and Perfetto). Timestamps and
// durations are microseconds; fractional values carry sub-µs precision.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope: "t" thread
	Args  map[string]any `json:"args,omitempty"`
}

// ThreadName returns the metadata event that names a (pid, tid) lane in
// the trace viewer.
func ThreadName(pid, tid int64, name string) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	}
}

// ProcessName returns the metadata event that names a pid.
func ProcessName(pid int64, name string) TraceEvent {
	return TraceEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": name},
	}
}

// ChromeStream writes a Chrome trace incrementally: the container object
// is opened on creation, each Add encodes one event straight to the
// writer, and Close terminates the document. Memory use is one event,
// not the whole trace — flight recorders and long campaigns export
// arbitrarily many events at constant cost. Not safe for concurrent use.
//
//autovet:nilsafe
type ChromeStream struct {
	w    io.Writer
	n    int
	err  error
	done bool
	//autovet:bounded reused encode buffer, reset to [:0] per event
	scratch []byte
}

// NewChromeStream opens a trace document on w.
func NewChromeStream(w io.Writer) *ChromeStream {
	cs := &ChromeStream{w: w}
	_, cs.err = io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`)
	return cs
}

// Add appends one event to the stream. The first error sticks; Close
// reports it. Safe on a nil receiver (no-op).
func (cs *ChromeStream) Add(ev TraceEvent) error {
	if cs == nil {
		return nil
	}
	if cs.err != nil || cs.done {
		return cs.err
	}
	buf, err := json.Marshal(ev)
	if err != nil {
		cs.err = err
		return err
	}
	if cs.n > 0 {
		cs.scratch = append(cs.scratch[:0], ',', '\n')
	} else {
		cs.scratch = append(cs.scratch[:0], '\n')
	}
	cs.scratch = append(cs.scratch, buf...)
	if _, err := cs.w.Write(cs.scratch); err != nil {
		cs.err = err
		return err
	}
	cs.n++
	return nil
}

// Close terminates the document and returns the first error seen. Safe
// on a nil receiver (no-op). Idempotent.
func (cs *ChromeStream) Close() error {
	if cs == nil {
		return nil
	}
	if cs.done {
		return cs.err
	}
	cs.done = true
	if cs.err != nil {
		return cs.err
	}
	_, cs.err = io.WriteString(cs.w, "\n]}\n")
	return cs.err
}

// Events returns how many events were written. Zero on a nil receiver.
func (cs *ChromeStream) Events() int {
	if cs == nil {
		return 0
	}
	return cs.n
}

// WriteChromeTrace writes events as a complete JSON object trace
// ({"traceEvents": [...]}), the container format both chrome://tracing
// and Perfetto accept. Events stream one at a time — the whole trace is
// never materialized as a single JSON buffer.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	cs := NewChromeStream(w)
	for _, ev := range events {
		if err := cs.Add(ev); err != nil {
			return err
		}
	}
	return cs.Close()
}
