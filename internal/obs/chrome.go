package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// array loaded by chrome://tracing and Perfetto). Timestamps and
// durations are microseconds; fractional values carry sub-µs precision.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope: "t" thread
	Args  map[string]any `json:"args,omitempty"`
}

// ThreadName returns the metadata event that names a (pid, tid) lane in
// the trace viewer.
func ThreadName(pid, tid int64, name string) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	}
}

// ProcessName returns the metadata event that names a pid.
func ProcessName(pid int64, name string) TraceEvent {
	return TraceEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": name},
	}
}

// WriteChromeTrace writes events as a complete JSON object trace
// ({"traceEvents": [...]}), the container format both chrome://tracing
// and Perfetto accept.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	doc := struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
