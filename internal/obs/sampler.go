package obs

import (
	"sort"
	"sync"
)

// SeriesPoint is one sample of one series on the virtual-time grid.
type SeriesPoint struct {
	At    int64   `json:"at_ns"`
	Value float64 `json:"value"`
}

// Series is a virtual-time series of one registered metric: the curve a
// campaign reports instead of an end-state scalar. Histograms expand
// into two series, <name>_count and <name>_sum, so rate and mean curves
// can be derived pointwise.
type Series struct {
	Name   string        `json:"name"`
	Labels []Label       `json:"labels,omitempty"`
	Kind   string        `json:"kind"`
	Points []SeriesPoint `json:"points"`
}

// Key identifies the series: name plus rendered label set.
func (s Series) Key() string { return s.Name + labelString(s.Labels) }

// SamplerOptions tunes a Sampler.
type SamplerOptions struct {
	// Match selects the metric families to sample by name (nil: all).
	// Histogram families are matched on the base name, before the
	// _count/_sum expansion.
	Match func(name string) bool
	// OnDelta, when set, observes every counter increment between
	// consecutive samples — the feed of the flight recorder's
	// metric-delta ring.
	OnDelta func(at int64, name string, labels []Label, delta float64)
	// MaxPoints bounds the points kept per series; the oldest point is
	// dropped beyond it (0: unbounded — the grid bounds growth anyway).
	MaxPoints int
}

// Sampler samples a registry on a virtual-time grid, producing one
// Series per matched metric. It does not own a clock: the simulation
// kernel (or any other grid source) calls Sample with the current
// virtual time — see sim.Kernel.Every and rte.Platform.EnableSampling.
// Safe for concurrent use; a nil *Sampler is valid and records nothing.
//
//autovet:nilsafe
type Sampler struct {
	mu     sync.Mutex
	reg    *Registry
	opt    SamplerOptions
	series map[string]*seriesState
	//autovet:bounded one entry per matched series, deduped via series map
	order   []string
	samples uint64
}

type seriesState struct {
	s       Series
	prev    float64
	hasPrev bool
}

// NewSampler returns a sampler over reg. A nil registry yields a sampler
// that records nothing.
func NewSampler(reg *Registry, opt SamplerOptions) *Sampler {
	return &Sampler{reg: reg, opt: opt, series: map[string]*seriesState{}}
}

// Samples returns how many grid points were taken. Zero on a nil
// receiver.
func (s *Sampler) Samples() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Sample takes one grid point at virtual time at: every matched metric
// appends its current value to its series. Counters additionally report
// their increment since the previous sample through OnDelta. Safe on a
// nil receiver (no-op).
func (s *Sampler) Sample(at int64) {
	if s == nil || s.reg == nil {
		return
	}
	s.reg.mu.Lock()
	metrics := append([]*metric(nil), s.reg.all...)
	s.reg.mu.Unlock()
	// Evaluate every reading before taking s.mu: counterFn/gaugeFn are
	// arbitrary user callbacks, and running them under the sampler lock
	// would let a callback that touches the sampler (or another lock)
	// deadlock the sampling grid. opt is immutable after NewSampler, so
	// Match runs unlocked too.
	type reading struct {
		m       *metric
		name    string
		v       float64
		counter bool
	}
	reads := make([]reading, 0, len(metrics))
	for _, m := range metrics {
		if s.opt.Match != nil && !s.opt.Match(m.name) {
			continue
		}
		switch {
		case m.counterFn != nil:
			reads = append(reads, reading{m, m.name, float64(m.counterFn()), true})
		case m.gaugeFn != nil:
			reads = append(reads, reading{m, m.name, m.gaugeFn(), false})
		case m.counter != nil:
			reads = append(reads, reading{m, m.name, float64(m.counter.Value()), true})
		case m.gauge != nil:
			reads = append(reads, reading{m, m.name, float64(m.gauge.Value()), false})
		case m.hist != nil:
			reads = append(reads, reading{m, m.name + "_count", float64(m.hist.Count()), false})
			reads = append(reads, reading{m, m.name + "_sum", float64(m.hist.Sum()), false})
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples++
	for _, r := range reads {
		s.point(at, r.m, r.name, r.v, r.counter)
	}
}

// point appends one sample to the series of (name, m.labels), creating
// the series on first use. Caller holds s.mu.
func (s *Sampler) point(at int64, m *metric, name string, v float64, counter bool) {
	key := seriesKey(name, m.labels)
	st := s.series[key]
	if st == nil {
		st = &seriesState{s: Series{Name: name, Labels: m.labels, Kind: m.kind.String()}}
		s.series[key] = st
		s.order = append(s.order, key)
	}
	if counter && s.opt.OnDelta != nil && st.hasPrev && v > st.prev {
		s.opt.OnDelta(at, name, m.labels, v-st.prev)
	}
	st.prev, st.hasPrev = v, true
	if s.opt.MaxPoints > 0 && len(st.s.Points) >= s.opt.MaxPoints {
		copy(st.s.Points, st.s.Points[1:])
		st.s.Points = st.s.Points[:len(st.s.Points)-1]
	}
	st.s.Points = append(st.s.Points, SeriesPoint{At: at, Value: v})
}

// Series returns a deterministic copy of every recorded series, sorted
// by name then label set. Nil on a nil receiver.
func (s *Sampler) Series() []Series {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.order))
	for _, key := range s.order {
		st := s.series[key]
		cp := st.s
		cp.Points = append([]SeriesPoint(nil), st.s.Points...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}
