package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records wall-clock spans — named, optionally nested intervals —
// for pipeline-style work. A nil *Tracer is valid and records nothing,
// so instrumented code traces unconditionally. Safe for concurrent use:
// parallel jobs start sibling spans under a shared parent.
//
//autovet:nilsafe
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	//autovet:bounded host-side dev tracing, one bounded export run per tracer
	spans []spanData
}

// spanData is one recorded span. start/end are offsets from the tracer
// epoch; end < 0 means still open.
type spanData struct {
	name   string
	parent int // index into spans; -1 for roots
	start  time.Duration
	end    time.Duration
}

// Span is a handle to an open span. A nil *Span is valid: End is a no-op
// and children of a nil span become roots.
type Span struct {
	t   *Tracer
	idx int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a root span. Nil-safe: returns nil on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartChild(nil, name)
}

// StartChild opens a span under parent (nil parent makes a root). The
// returned handle's End closes it; spans left open are closed at export
// time.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.epoch.IsZero() {
		t.epoch = time.Now() //autovet:allow walltime spans measure host execution, not sim time
	}
	p := -1
	if parent != nil && parent.t == t {
		p = parent.idx
	}
	t.spans = append(t.spans, spanData{name: name, parent: p, start: time.Since(t.epoch), end: -1}) //autovet:allow walltime host-side span clock
	return &Span{t: t, idx: len(t.spans) - 1}
}

// End closes the span. Safe on a nil receiver; double End keeps the
// first close.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.t.spans[s.idx].end < 0 {
		s.t.spans[s.idx].end = time.Since(s.t.epoch) //autovet:allow walltime host-side span clock
	}
}

// Len returns the number of recorded spans. Zero on a nil receiver.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// snapshot copies the spans, closing any still-open span at the current
// time so exports always see finite intervals.
func (t *Tracer) snapshot() []spanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]spanData(nil), t.spans...)
	now := time.Since(t.epoch) //autovet:allow walltime host-side span clock
	for i := range out {
		if out[i].end < 0 {
			out[i].end = now
		}
	}
	return out
}

// SpanEvents converts the recorded spans to flight-recorder span
// events — host-time nanosecond offsets from the tracer epoch — ready
// to embed in a diagnostic bundle. Open spans are closed at the
// snapshot instant. Safe on a nil receiver (returns nil).
func (t *Tracer) SpanEvents() []SpanEvent {
	if t == nil {
		return nil
	}
	data := t.snapshot()
	if len(data) == 0 {
		return nil
	}
	out := make([]SpanEvent, len(data))
	for i, s := range data {
		detail := ""
		if s.parent >= 0 {
			detail = "parent: " + data[s.parent].name
		}
		out[i] = SpanEvent{
			Name: s.name, Start: int64(s.start), End: int64(s.end),
			Kind: "pipeline", Detail: detail,
		}
	}
	return out
}

// WriteTree renders the spans as an indented text tree in start order:
//
//	verify                         12.4ms
//	  verify/ecu                    1.2ms
//
// Safe on a nil receiver (writes nothing).
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.snapshot()
	children := make(map[int][]int, len(spans))
	var roots []int
	for i := range spans {
		if spans[i].parent < 0 {
			roots = append(roots, i)
		} else {
			children[spans[i].parent] = append(children[spans[i].parent], i)
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].start < spans[idx[b]].start })
	}
	byStart(roots)
	var render func(idx []int, depth int) error
	render = func(idx []int, depth int) error {
		for _, i := range idx {
			s := &spans[i]
			_, err := fmt.Fprintf(w, "%*s%-*s %12v\n", 2*depth, "", 48-2*depth, s.name, s.end-s.start)
			if err != nil {
				return err
			}
			kids := children[i]
			byStart(kids)
			if err := render(kids, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return render(roots, 0)
}

// ChromeEvents converts the spans to Chrome trace events. Concurrent
// sibling spans are spread over lanes (thread IDs) so overlapping
// intervals never share a lane unless one contains the other — the shape
// chrome://tracing and Perfetto render correctly.
func (t *Tracer) ChromeEvents() []TraceEvent {
	if t == nil {
		return nil
	}
	spans := t.snapshot()
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	// Longest-first among equal starts, so containers get lanes before
	// their contents.
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := &spans[order[a]], &spans[order[b]]
		if sa.start != sb.start {
			return sa.start < sb.start
		}
		return sa.end-sa.start > sb.end-sb.start
	})
	type laneState struct{ spans []int }
	var lanes []laneState
	lane := make([]int, len(spans))
	for _, i := range order {
		s := &spans[i]
		placed := false
		for li := range lanes {
			ok := true
			for _, j := range lanes[li].spans {
				o := &spans[j]
				overlap := s.start < o.end && o.start < s.end
				contained := (o.start <= s.start && s.end <= o.end) || (s.start <= o.start && o.end <= s.end)
				if overlap && !contained {
					ok = false
					break
				}
			}
			if ok {
				lanes[li].spans = append(lanes[li].spans, i)
				lane[i] = li
				placed = true
				break
			}
		}
		if !placed {
			lanes = append(lanes, laneState{spans: []int{i}})
			lane[i] = len(lanes) - 1
		}
	}
	out := make([]TraceEvent, 0, len(spans))
	for _, i := range order {
		s := &spans[i]
		out = append(out, TraceEvent{
			Name: s.name, Phase: "X",
			TS:  float64(s.start) / 1e3, // ns → µs
			Dur: float64(s.end-s.start) / 1e3,
			PID: 1, TID: int64(lane[i] + 1),
		})
	}
	return out
}

// WriteChrome writes the spans as a Chrome trace-event JSON document
// loadable in chrome://tracing and Perfetto. Safe on a nil receiver
// (writes an empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return WriteChromeTrace(w, nil)
	}
	return WriteChromeTrace(w, t.ChromeEvents())
}
