package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs run.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("jobs_total", "Jobs run."); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatal("SetMax did not raise the gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1001 {
		t.Fatalf("sum = %d, want 1001", h.Sum())
	}
	// v=0 and v=-5 land in bucket 0; v=1 in bucket 1 (le 1); v=2,3 in
	// bucket 2 (le 3); v=1000 in bucket 10 (le 1023).
	if got := h.buckets[0].Load(); got != 2 {
		t.Fatalf("bucket 0 = %d, want 2", got)
	}
	if got := h.buckets[2].Load(); got != 2 {
		t.Fatalf("bucket le=3 = %d, want 2", got)
	}
	if BucketBound(10) != 1023 {
		t.Fatalf("BucketBound(10) = %d, want 1023", BucketBound(10))
	}
	if BucketBound(64) != math.MaxInt64 {
		t.Fatal("top bucket bound must be MaxInt64")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "")
	r.Counter("aa_total", "")
	r.Gauge("mm", "", Label{Key: "stage", Value: "b"})
	r.Gauge("mm", "", Label{Key: "stage", Value: "a"})
	s := r.Snapshot()
	var names []string
	for _, smp := range s {
		names = append(names, smp.Name+labelString(smp.Labels))
	}
	want := []string{"aa_total", `mm{stage="a"}`, `mm{stage="b"}`, "zz_total"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", names, want)
		}
	}
}

func TestPullStyleMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(41)
	r.CounterFunc("pull_total", "Pulled.", func() uint64 { return n })
	r.GaugeFunc("pull_gauge", "Pulled gauge.", func() float64 { return 2.5 })
	n++
	s := r.Snapshot()
	if s[1].Value != 42 {
		t.Fatalf("counter func read %v, want 42", s[1].Value)
	}
	if s[0].Value != 2.5 {
		t.Fatalf("gauge func read %v, want 2.5", s[0].Value)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache_hits_total", "Cache hits.", Label{Key: "cache", Value: "rta"}).Add(12)
	r.Gauge("pool_busy", "Busy workers.").Set(3)
	h := r.Histogram("stage_duration_ns", "Stage wall time.", Label{Key: "stage", Value: "ecu"})
	h.Observe(100)
	h.Observe(3000)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cache_hits_total counter",
		`cache_hits_total{cache="rta"} 12`,
		"# TYPE pool_busy gauge",
		"pool_busy 3",
		"# TYPE stage_duration_ns histogram",
		`stage_duration_ns_bucket{stage="ecu",le="127"} 1`,
		`stage_duration_ns_bucket{stage="ecu",le="+Inf"} 2`,
		`stage_duration_ns_sum{stage="ecu"} 3100`,
		`stage_duration_ns_count{stage="ecu"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_hist", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist", "").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
