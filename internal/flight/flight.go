// Package flight provides singleflight-style call deduplication for the
// analysis caches: when several goroutines miss on the same key at once
// (DSE workers scoring sibling candidates, chain bounds sharing a bus),
// exactly one runs the computation and the rest wait for its result
// instead of repeating the work and double-counting the miss.
package flight

import "sync"

// call is one in-flight computation.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group deduplicates concurrent calls by string key. The zero value is
// ready to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do runs fn for key unless an identical call is already in flight, in
// which case it blocks until that call finishes and returns its result.
// shared reports whether the result came from another caller's fn. The
// in-flight entry is dropped once fn returns, so Do memoizes nothing
// itself — pair it with a result cache and double-check the cache inside
// fn (a racer may have completed and stored between the caller's cache
// miss and fn running).
func (g *Group[V]) Do(key string, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	if g.m == nil {
		g.m = map[string]*call[V]{}
	}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
