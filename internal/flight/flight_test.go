package flight

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsOncePerConcurrentKey(t *testing.T) {
	var g Group[int]
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	const waiters = 8
	wg.Add(waiters + 1)
	go func() {
		defer wg.Done()
		v, err, shared := g.Do("k", func() (int, error) {
			close(started)
			<-release
			calls.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 || shared {
			t.Errorf("leader: v=%d err=%v shared=%v", v, err, shared)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("waiter: v=%d err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Give every waiter a chance to reach the in-flight entry before the
	// leader finishes; a straggler that misses it legitimately reruns fn,
	// so the hard assertions below are scheduling-independent identities.
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	got, shared := calls.Load(), sharedCount.Load()
	if got != 1+waiters-shared {
		t.Fatalf("fn ran %d times with %d shared results, want %d", got, shared, 1+waiters-shared)
	}
	if shared == 0 {
		t.Fatal("no caller was deduplicated onto the in-flight call")
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[string]
	v1, err1, sh1 := g.Do("a", func() (string, error) { return "A", nil })
	v2, err2, sh2 := g.Do("b", func() (string, error) { return "B", nil })
	if err1 != nil || err2 != nil || sh1 || sh2 || v1 != "A" || v2 != "B" {
		t.Fatalf("got (%q,%v,%v) and (%q,%v,%v)", v1, err1, sh1, v2, err2, sh2)
	}
}

func TestDoPropagatesErrorToWaiters(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err, _ := g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-started
	go func() {
		defer wg.Done()
		// The fallback fn also fails, so the assertion holds whether this
		// caller coalesced onto the leader or straggled in after it.
		_, err, _ := g.Do("k", func() (int, error) { return 0, boom })
		if !errors.Is(err, boom) {
			t.Errorf("waiter err = %v", err)
		}
	}()
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
}

func TestDoDropsEntryAfterCompletion(t *testing.T) {
	var g Group[int]
	for want := 1; want <= 3; want++ {
		v, err, shared := g.Do("k", func() (int, error) { return want, nil })
		if err != nil || shared || v != want {
			t.Fatalf("round %d: v=%d err=%v shared=%v", want, v, err, shared)
		}
	}
}
