package model

import (
	"encoding/json"
	"fmt"
	"io"

	"autorte/internal/sim"
)

// The exchange format mirrors the AUTOSAR "templates": a self-contained
// JSON document derived from the meta-model, carrying software components,
// ECU resources and system constraints (§2). Port interfaces are stored
// once and referenced by name, as in function catalogues.

type xDoc struct {
	FormatVersion int               `json:"formatVersion"`
	System        string            `json:"system"`
	Interfaces    []xIface          `json:"interfaces"`
	Components    []xSWC            `json:"components"`
	ECUs          []ECU             `json:"ecus"`
	Buses         []Bus             `json:"buses"`
	Connectors    []Connector       `json:"connectors"`
	Constraints   []xConstraint     `json:"constraints,omitempty"`
	Mapping       map[string]string `json:"mapping,omitempty"`
}

type xIface struct {
	Name       string        `json:"name"`
	Kind       string        `json:"kind"`
	Elements   []DataElement `json:"elements,omitempty"`
	Operations []Operation   `json:"operations,omitempty"`
}

type xPort struct {
	Name      string `json:"name"`
	Direction string `json:"direction"`
	Interface string `json:"interface"`
}

type xTrigger struct {
	Kind     string `json:"kind"`
	PeriodUS int64  `json:"periodUs,omitempty"`
	OffsetUS int64  `json:"offsetUs,omitempty"`
	Port     string `json:"port,omitempty"`
	Elem     string `json:"elem,omitempty"`
	Mode     string `json:"mode,omitempty"`
}

type xRunnable struct {
	Name       string    `json:"name"`
	WCETUS     int64     `json:"wcetUs"`
	BCETUS     int64     `json:"bcetUs,omitempty"`
	DeadlineUS int64     `json:"deadlineUs,omitempty"`
	Trigger    xTrigger  `json:"trigger"`
	Reads      []PortRef `json:"reads,omitempty"`
	Writes     []PortRef `json:"writes,omitempty"`
}

type xSWC struct {
	Name      string           `json:"name"`
	Supplier  string           `json:"supplier,omitempty"`
	DAS       string           `json:"das,omitempty"`
	ASIL      string           `json:"asil,omitempty"`
	MemoryKB  int              `json:"memoryKb,omitempty"`
	Ports     []xPort          `json:"ports,omitempty"`
	Runnables []xRunnable      `json:"runnables"`
	Config    map[string]Param `json:"config,omitempty"`
}

type xConstraint struct {
	Name     string     `json:"name"`
	Chain    []PortRef2 `json:"chain"`
	BudgetUS int64      `json:"budgetUs"`
}

// FormatVersion is the current exchange format version.
const FormatVersion = 1

func kindName(k InterfaceKind) string {
	if k == SenderReceiver {
		return "senderReceiver"
	}
	return "clientServer"
}

func parseKind(s string) (InterfaceKind, error) {
	switch s {
	case "senderReceiver":
		return SenderReceiver, nil
	case "clientServer":
		return ClientServer, nil
	}
	return 0, fmt.Errorf("unknown interface kind %q", s)
}

func asilName(a ASIL) string { return a.String() }

func parseASIL(s string) (ASIL, error) {
	switch s {
	case "", "QM":
		return QM, nil
	case "ASIL-A":
		return ASILA, nil
	case "ASIL-B":
		return ASILB, nil
	case "ASIL-C":
		return ASILC, nil
	case "ASIL-D":
		return ASILD, nil
	}
	return 0, fmt.Errorf("unknown ASIL %q", s)
}

func eventKindName(k EventKind) string {
	switch k {
	case TimingEvent:
		return "timing"
	case DataReceivedEvent:
		return "dataReceived"
	case OperationInvokedEvent:
		return "operationInvoked"
	default:
		return "modeSwitch"
	}
}

func parseEventKind(s string) (EventKind, error) {
	switch s {
	case "timing":
		return TimingEvent, nil
	case "dataReceived":
		return DataReceivedEvent, nil
	case "operationInvoked":
		return OperationInvokedEvent, nil
	case "modeSwitch":
		return ModeSwitchEvent, nil
	}
	return 0, fmt.Errorf("unknown event kind %q", s)
}

// Export writes the system as a JSON template document.
func Export(w io.Writer, s *System) error {
	doc := xDoc{
		FormatVersion: FormatVersion,
		System:        s.Name,
		ECUs:          deref(s.ECUs),
		Buses:         deref(s.Buses),
		Connectors:    s.Connectors,
		Mapping:       s.Mapping,
	}
	for _, pi := range s.Interfaces {
		doc.Interfaces = append(doc.Interfaces, xIface{
			Name: pi.Name, Kind: kindName(pi.Kind),
			Elements: pi.Elements, Operations: pi.Operations,
		})
	}
	for _, c := range s.Components {
		xc := xSWC{
			Name: c.Name, Supplier: c.Supplier, DAS: c.DAS,
			ASIL: asilName(c.ASIL), MemoryKB: c.MemoryKB, Config: c.Config.Params,
		}
		for _, p := range c.Ports {
			xc.Ports = append(xc.Ports, xPort{
				Name: p.Name, Direction: p.Direction.String(), Interface: p.Interface.Name,
			})
		}
		for _, r := range c.Runnables {
			xc.Runnables = append(xc.Runnables, xRunnable{
				Name:       r.Name,
				WCETUS:     int64(r.WCETNominal / sim.Microsecond),
				BCETUS:     int64(r.BCET / sim.Microsecond),
				DeadlineUS: int64(r.Deadline / sim.Microsecond),
				Trigger: xTrigger{
					Kind:     eventKindName(r.Trigger.Kind),
					PeriodUS: int64(r.Trigger.Period / sim.Microsecond),
					OffsetUS: int64(r.Trigger.Offset / sim.Microsecond),
					Port:     r.Trigger.Port, Elem: r.Trigger.Elem, Mode: r.Trigger.Mode,
				},
				Reads: r.Reads, Writes: r.Writes,
			})
		}
		doc.Components = append(doc.Components, xc)
	}
	for _, lc := range s.Constraints {
		doc.Constraints = append(doc.Constraints, xConstraint{
			Name: lc.Name, Chain: lc.Chain, BudgetUS: int64(lc.Budget / sim.Microsecond),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func deref[T any](in []*T) []T {
	out := make([]T, len(in))
	for i, p := range in {
		out[i] = *p
	}
	return out
}

// Import parses a JSON template document and reconstructs the system,
// resolving interface references and validating the result.
func Import(r io.Reader) (*System, error) {
	var doc xDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("exchange: %w", err)
	}
	if doc.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("exchange: unsupported format version %d", doc.FormatVersion)
	}
	s := &System{Name: doc.System, Connectors: doc.Connectors, Mapping: doc.Mapping}
	ifaces := map[string]*PortInterface{}
	for _, xi := range doc.Interfaces {
		kind, err := parseKind(xi.Kind)
		if err != nil {
			return nil, fmt.Errorf("exchange: interface %s: %w", xi.Name, err)
		}
		pi := &PortInterface{Name: xi.Name, Kind: kind, Elements: xi.Elements, Operations: xi.Operations}
		if ifaces[xi.Name] != nil {
			return nil, fmt.Errorf("exchange: duplicate interface %s", xi.Name)
		}
		ifaces[xi.Name] = pi
		s.Interfaces = append(s.Interfaces, pi)
	}
	for i := range doc.ECUs {
		e := doc.ECUs[i]
		s.ECUs = append(s.ECUs, &e)
	}
	for i := range doc.Buses {
		b := doc.Buses[i]
		s.Buses = append(s.Buses, &b)
	}
	for _, xc := range doc.Components {
		asil, err := parseASIL(xc.ASIL)
		if err != nil {
			return nil, fmt.Errorf("exchange: component %s: %w", xc.Name, err)
		}
		c := &SWC{
			Name: xc.Name, Supplier: xc.Supplier, DAS: xc.DAS,
			ASIL: asil, MemoryKB: xc.MemoryKB, Config: ConfigSet{Params: xc.Config},
		}
		for _, xp := range xc.Ports {
			pi, ok := ifaces[xp.Interface]
			if !ok {
				return nil, fmt.Errorf("exchange: component %s port %s: unknown interface %q", xc.Name, xp.Name, xp.Interface)
			}
			var dir PortDirection
			switch xp.Direction {
			case "provided":
				dir = Provided
			case "required":
				dir = Required
			default:
				return nil, fmt.Errorf("exchange: component %s port %s: unknown direction %q", xc.Name, xp.Name, xp.Direction)
			}
			c.Ports = append(c.Ports, Port{Name: xp.Name, Direction: dir, Interface: pi})
		}
		for _, xr := range xc.Runnables {
			ek, err := parseEventKind(xr.Trigger.Kind)
			if err != nil {
				return nil, fmt.Errorf("exchange: component %s runnable %s: %w", xc.Name, xr.Name, err)
			}
			c.Runnables = append(c.Runnables, Runnable{
				Name:        xr.Name,
				WCETNominal: sim.Duration(xr.WCETUS) * sim.Microsecond,
				BCET:        sim.Duration(xr.BCETUS) * sim.Microsecond,
				Deadline:    sim.Duration(xr.DeadlineUS) * sim.Microsecond,
				Trigger: Trigger{
					Kind:   ek,
					Period: sim.Duration(xr.Trigger.PeriodUS) * sim.Microsecond,
					Offset: sim.Duration(xr.Trigger.OffsetUS) * sim.Microsecond,
					Port:   xr.Trigger.Port, Elem: xr.Trigger.Elem, Mode: xr.Trigger.Mode,
				},
				Reads: xr.Reads, Writes: xr.Writes,
			})
		}
		s.Components = append(s.Components, c)
	}
	for _, xlc := range doc.Constraints {
		s.Constraints = append(s.Constraints, LatencyConstraint{
			Name: xlc.Name, Chain: xlc.Chain,
			Budget: sim.Duration(xlc.BudgetUS) * sim.Microsecond,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("exchange: imported system invalid: %w", err)
	}
	return s, nil
}
