package model

import "fmt"

// ConfigClass is AUTOSAR's "extended configuration concept" (§2): each
// parameter is bound at one of three times, trading flexibility against
// runtime cost.
type ConfigClass uint8

const (
	// PreCompile parameters are fixed when the ECU image is built.
	PreCompile ConfigClass = iota
	// LinkTime parameters are fixed when modules are linked.
	LinkTime
	// PostBuild parameters can be changed in the flashed image without
	// recompilation (e.g. at end of line or in the workshop).
	PostBuild
)

func (c ConfigClass) String() string {
	switch c {
	case PreCompile:
		return "pre-compile"
	case LinkTime:
		return "link-time"
	default:
		return "post-build"
	}
}

// Param is one configuration parameter with its binding class.
type Param struct {
	Class ConfigClass
	Value string
}

// ConfigSet maps parameter names to values and binding classes. The zero
// value is an empty, usable set.
type ConfigSet struct {
	Params map[string]Param
}

// Set defines or overwrites a parameter.
func (cs *ConfigSet) Set(name string, class ConfigClass, value string) {
	if cs.Params == nil {
		cs.Params = map[string]Param{}
	}
	cs.Params[name] = Param{Class: class, Value: value}
}

// Get returns a parameter value and whether it exists.
func (cs *ConfigSet) Get(name string) (string, bool) {
	p, ok := cs.Params[name]
	return p.Value, ok
}

// Rebind changes a parameter's value, enforcing the binding-time rule:
// once the build stage has passed the parameter's class, rebinding fails.
// stage is the current lifecycle stage expressed as a ConfigClass
// (PreCompile = still compiling, LinkTime = linked, PostBuild = flashed).
func (cs *ConfigSet) Rebind(name string, stage ConfigClass, value string) error {
	p, ok := cs.Params[name]
	if !ok {
		return fmt.Errorf("config: unknown parameter %q", name)
	}
	if stage > p.Class {
		return fmt.Errorf("config: parameter %q is %v-bound; cannot change at %v stage", name, p.Class, stage)
	}
	p.Value = value
	cs.Params[name] = p
	return nil
}

// ByClass returns the names of all parameters with the given class,
// in unspecified order.
func (cs *ConfigSet) ByClass(class ConfigClass) []string {
	var out []string
	for name, p := range cs.Params {
		if p.Class == class {
			out = append(out, name)
		}
	}
	return out
}
