package model

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"autorte/internal/sim"
)

// BusKind enumerates the communication technologies the paper discusses.
type BusKind uint8

const (
	// BusCAN is the event-triggered priority bus.
	BusCAN BusKind = iota
	// BusFlexRay is the hybrid time/event-triggered bus.
	BusFlexRay
	// BusTTP is the fully time-triggered protocol with membership.
	BusTTP
)

func (b BusKind) String() string {
	switch b {
	case BusCAN:
		return "CAN"
	case BusFlexRay:
		return "FlexRay"
	default:
		return "TTP"
	}
}

// Bus describes a physical communication channel.
type Bus struct {
	Name    string
	Kind    BusKind
	BitRate int64 // bits per second
}

// ECU describes an electronic control unit's resources ("ECU resources"
// are one of the three AUTOSAR methodology inputs, §2).
type ECU struct {
	Name string
	// Speed scales runnable WCETs: demand = WCETNominal / Speed.
	Speed float64
	// MemoryKB is the RAM available to hosted SWCs.
	MemoryKB int
	// Buses lists the channels this ECU is attached to.
	Buses []string
	// Position is the (x, y) mounting location in the vehicle, in meters;
	// used to estimate harness (wiring) length for the federated study.
	Position [2]float64
	// MaxASIL is the highest criticality the ECU's hardware qualifies for.
	MaxASIL ASIL
}

// Connector joins a required port to a provided port at the VFB level.
type Connector struct {
	FromSWC, FromPort string // provider side
	ToSWC, ToPort     string // requirer side
}

// LatencyConstraint is a system constraint on an event chain: data leaving
// First must reach Last within Budget (end-to-end latency, §3).
type LatencyConstraint struct {
	Name   string
	Chain  []PortRef2 // ordered hops: component+port pairs
	Budget sim.Duration
}

// PortRef2 names a port on a specific component instance.
type PortRef2 struct {
	SWC, Port string
}

// System is the complete self-contained description the AUTOSAR
// methodology works on: software components, ECU resources and system
// constraints, plus the VFB connector network.
type System struct {
	Name        string
	Components  []*SWC
	Interfaces  []*PortInterface
	ECUs        []*ECU
	Buses       []*Bus
	Connectors  []Connector
	Constraints []LatencyConstraint
	// Mapping assigns each SWC to an ECU (by name). Empty until deployment.
	Mapping map[string]string
}

// Hash returns a short deterministic fingerprint of the system
// configuration ("sha256:<16 hex>"). Diagnostic bundles carry it so an
// offline analysis can tell whether two bundles came from the same
// platform configuration before diffing them. Empty on a nil system.
func (s *System) Hash() string {
	if s == nil {
		return ""
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:8])
}

// Component returns the named SWC, or nil.
func (s *System) Component(name string) *SWC {
	for _, c := range s.Components {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ECUByName returns the named ECU, or nil.
func (s *System) ECUByName(name string) *ECU {
	for _, e := range s.ECUs {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// BusByName returns the named bus, or nil.
func (s *System) BusByName(name string) *Bus {
	for _, b := range s.Buses {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Validate checks the whole system: component validity, connector
// endpoints, interface compatibility across every connector, mapping
// targets, and constraint chains.
func (s *System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("system with empty name")
	}
	compSeen := map[string]bool{}
	for _, c := range s.Components {
		if compSeen[c.Name] {
			return fmt.Errorf("duplicate component %s", c.Name)
		}
		compSeen[c.Name] = true
		if err := c.Validate(); err != nil {
			return err
		}
	}
	for _, c := range s.Components {
		if c.ReplicaOf == "" {
			continue
		}
		primary := s.Component(c.ReplicaOf)
		if primary == nil {
			return fmt.Errorf("component %s: replica of unknown component %q", c.Name, c.ReplicaOf)
		}
		if primary.IsStandby() {
			return fmt.Errorf("component %s: replica of %s, which is itself a standby", c.Name, c.ReplicaOf)
		}
	}
	ecuSeen := map[string]bool{}
	for _, e := range s.ECUs {
		if ecuSeen[e.Name] {
			return fmt.Errorf("duplicate ECU %s", e.Name)
		}
		ecuSeen[e.Name] = true
		if e.Speed <= 0 {
			return fmt.Errorf("ECU %s: non-positive speed", e.Name)
		}
		for _, b := range e.Buses {
			if s.BusByName(b) == nil {
				return fmt.Errorf("ECU %s: attached to unknown bus %q", e.Name, b)
			}
		}
	}
	for _, b := range s.Buses {
		if b.BitRate <= 0 {
			return fmt.Errorf("bus %s: non-positive bit rate", b.Name)
		}
	}
	for i, conn := range s.Connectors {
		if err := s.validateConnector(conn); err != nil {
			return fmt.Errorf("connector %d: %w", i, err)
		}
	}
	for swc, ecu := range s.Mapping {
		if s.Component(swc) == nil {
			return fmt.Errorf("mapping references unknown component %q", swc)
		}
		if s.ECUByName(ecu) == nil {
			return fmt.Errorf("mapping of %s references unknown ECU %q", swc, ecu)
		}
	}
	for _, lc := range s.Constraints {
		if len(lc.Chain) < 2 {
			return fmt.Errorf("constraint %s: chain needs at least two hops", lc.Name)
		}
		if lc.Budget <= 0 {
			return fmt.Errorf("constraint %s: non-positive budget", lc.Name)
		}
		for _, h := range lc.Chain {
			c := s.Component(h.SWC)
			if c == nil {
				return fmt.Errorf("constraint %s: unknown component %q", lc.Name, h.SWC)
			}
			if c.Port(h.Port) == nil {
				return fmt.Errorf("constraint %s: component %s has no port %q", lc.Name, h.SWC, h.Port)
			}
		}
	}
	return nil
}

func (s *System) validateConnector(conn Connector) error {
	from := s.Component(conn.FromSWC)
	if from == nil {
		return fmt.Errorf("unknown provider component %q", conn.FromSWC)
	}
	to := s.Component(conn.ToSWC)
	if to == nil {
		return fmt.Errorf("unknown requirer component %q", conn.ToSWC)
	}
	fp := from.Port(conn.FromPort)
	if fp == nil {
		return fmt.Errorf("component %s has no port %q", conn.FromSWC, conn.FromPort)
	}
	tp := to.Port(conn.ToPort)
	if tp == nil {
		return fmt.Errorf("component %s has no port %q", conn.ToSWC, conn.ToPort)
	}
	if fp.Direction != Provided {
		return fmt.Errorf("%s.%s is not a provided port", conn.FromSWC, conn.FromPort)
	}
	if tp.Direction != Required {
		return fmt.Errorf("%s.%s is not a required port", conn.ToSWC, conn.ToPort)
	}
	if err := Compatible(tp.Interface, fp.Interface); err != nil {
		return fmt.Errorf("%s.%s -> %s.%s: %w", conn.FromSWC, conn.FromPort, conn.ToSWC, conn.ToPort, err)
	}
	return nil
}

// IsRemote reports whether a connector crosses ECUs under the current
// mapping. Unmapped endpoints count as local.
func (s *System) IsRemote(conn Connector) bool {
	a, b := s.Mapping[conn.FromSWC], s.Mapping[conn.ToSWC]
	return a != "" && b != "" && a != b
}

// HarnessLength estimates total wiring length: for every remote connector,
// the Euclidean distance between the two ECUs (a proxy for "physical wires
// and physical contact points", §4).
func (s *System) HarnessLength() float64 {
	total := 0.0
	for _, conn := range s.Connectors {
		if !s.IsRemote(conn) {
			continue
		}
		a := s.ECUByName(s.Mapping[conn.FromSWC])
		b := s.ECUByName(s.Mapping[conn.ToSWC])
		if a == nil || b == nil {
			continue
		}
		dx := a.Position[0] - b.Position[0]
		dy := a.Position[1] - b.Position[1]
		total += math.Hypot(dx, dy)
	}
	return total
}

// UsedECUs returns the names of ECUs that host at least one component.
func (s *System) UsedECUs() []string {
	used := map[string]bool{}
	for _, e := range s.Mapping {
		used[e] = true
	}
	var out []string
	for _, e := range s.ECUs {
		if used[e.Name] {
			out = append(out, e.Name)
		}
	}
	return out
}

// ECULoad returns the utilization an ECU carries under the current
// mapping, accounting for ECU speed.
func (s *System) ECULoad(ecu string) float64 {
	e := s.ECUByName(ecu)
	if e == nil {
		return 0
	}
	u := 0.0
	for _, c := range s.Components {
		if s.Mapping[c.Name] == ecu {
			u += c.Utilization() / e.Speed
		}
	}
	return u
}

// EffectivePeriod derives a runnable's activation rate: its own period
// for timing events, the transitively-resolved producer period for
// data-received and operation-invoked events, and 0 when no rate can be
// derived (e.g. mode-switch handlers). The RTE's priority assignment, the
// schedulability analysis and the deployment capacity model all share
// this derivation so their views of the system agree.
func (s *System) EffectivePeriod(comp *SWC, run *Runnable) sim.Duration {
	return s.effectivePeriod(comp, run, nil)
}

func (s *System) effectivePeriod(comp *SWC, run *Runnable, seen map[string]bool) sim.Duration {
	// Timing and mode-switch triggers answer directly — the common case,
	// and the base of every derivation chain — before any cycle-tracking
	// state is touched, so the O(n log n) calls the task-set sort makes
	// stay allocation-free.
	switch run.Trigger.Kind {
	case TimingEvent:
		return run.Trigger.Period
	case ModeSwitchEvent:
		// Mode switches are sporadic by nature: no derivable period.
		return 0
	default:
		// DataReceivedEvent / OperationInvokedEvent: derived below, with
		// cycle tracking.
	}
	key := comp.Name + "." + run.Name
	if seen[key] {
		return 0 // dependency cycle
	}
	if seen == nil {
		// Allocated only when a derivation actually recurses.
		seen = make(map[string]bool, 4)
	}
	seen[key] = true
	switch run.Trigger.Kind {
	case DataReceivedEvent:
		for _, conn := range s.Connectors {
			if conn.ToSWC != comp.Name || conn.ToPort != run.Trigger.Port {
				continue
			}
			prov := s.Component(conn.FromSWC)
			if prov == nil {
				return 0
			}
			for i := range prov.Runnables {
				pr := &prov.Runnables[i]
				for _, w := range pr.Writes {
					if w.Port == conn.FromPort {
						return s.effectivePeriod(prov, pr, seen)
					}
				}
			}
		}
	case OperationInvokedEvent:
		for _, conn := range s.Connectors {
			if conn.FromSWC != comp.Name || conn.FromPort != run.Trigger.Port {
				continue
			}
			client := s.Component(conn.ToSWC)
			if client == nil {
				return 0
			}
			// Heuristic: the client's fastest derivable runnable drives
			// invocations.
			var best sim.Duration
			for i := range client.Runnables {
				cr := &client.Runnables[i]
				if p := s.effectivePeriod(client, cr, seen); p > 0 && (best == 0 || p < best) {
					best = p
				}
			}
			return best
		}
	default:
		// TimingEvent / ModeSwitchEvent already answered above.
	}
	return 0
}

// AnalyzedLoad returns an ECU's full processor demand under the current
// mapping, counting event-driven runnables at their derived rates (unlike
// ECULoad, which only sees declared periodic work). Deployment decisions
// must use this so that what the packer admits, the analysis can verify.
// Passive standby replicas demand no CPU until a fail-over promotes them,
// so they are excluded here; deploy's fail-over validity check covers
// their post-promotion demand.
func (s *System) AnalyzedLoad(ecu string) float64 {
	e := s.ECUByName(ecu)
	if e == nil {
		return 0
	}
	u := 0.0
	for _, c := range s.Components {
		if s.Mapping[c.Name] != ecu || c.PassiveStandby() {
			continue
		}
		for i := range c.Runnables {
			r := &c.Runnables[i]
			if p := s.EffectivePeriod(c, r); p > 0 {
				u += float64(r.WCETNominal) / float64(p) / e.Speed
			}
		}
	}
	return u
}

// Clone returns a deep copy of the system. DSE mutates clones, never the
// original.
func (s *System) Clone() *System {
	out := &System{Name: s.Name}
	for _, c := range s.Components {
		cc := *c
		cc.Ports = append([]Port(nil), c.Ports...)
		cc.Runnables = append([]Runnable(nil), c.Runnables...)
		if c.Config.Params != nil {
			cc.Config.Params = make(map[string]Param, len(c.Config.Params))
			for k, v := range c.Config.Params {
				cc.Config.Params[k] = v
			}
		}
		out.Components = append(out.Components, &cc)
	}
	for _, i := range s.Interfaces {
		ii := *i
		ii.Elements = append([]DataElement(nil), i.Elements...)
		ii.Operations = append([]Operation(nil), i.Operations...)
		out.Interfaces = append(out.Interfaces, &ii)
	}
	for _, e := range s.ECUs {
		ee := *e
		ee.Buses = append([]string(nil), e.Buses...)
		out.ECUs = append(out.ECUs, &ee)
	}
	for _, b := range s.Buses {
		bb := *b
		out.Buses = append(out.Buses, &bb)
	}
	out.Connectors = append([]Connector(nil), s.Connectors...)
	for _, lc := range s.Constraints {
		lc.Chain = append([]PortRef2(nil), lc.Chain...)
		out.Constraints = append(out.Constraints, lc)
	}
	if s.Mapping != nil {
		out.Mapping = make(map[string]string, len(s.Mapping))
		for k, v := range s.Mapping {
			out.Mapping[k] = v
		}
	}
	return out
}
