package model

import (
	"strings"
	"testing"

	"autorte/internal/sim"
)

func speedIface() *PortInterface {
	return &PortInterface{
		Name: "IfWheelSpeed", Kind: SenderReceiver,
		Elements: []DataElement{{Name: "speed", Type: UInt16}},
	}
}

func sensorSWC(pi *PortInterface) *SWC {
	return &SWC{
		Name: "WheelSensor", Supplier: "TierA", DAS: "chassis", ASIL: ASILD,
		Ports: []Port{{Name: "out", Direction: Provided, Interface: pi}},
		Runnables: []Runnable{{
			Name: "sample", WCETNominal: sim.US(100),
			Trigger: Trigger{Kind: TimingEvent, Period: sim.MS(5)},
			Writes:  []PortRef{{Port: "out", Elem: "speed"}},
		}},
		MemoryKB: 4,
	}
}

func ctrlSWC(pi *PortInterface) *SWC {
	return &SWC{
		Name: "BrakeCtrl", Supplier: "TierB", DAS: "chassis", ASIL: ASILD,
		Ports: []Port{{Name: "in", Direction: Required, Interface: pi}},
		Runnables: []Runnable{{
			Name: "control", WCETNominal: sim.US(300),
			Trigger: Trigger{Kind: DataReceivedEvent, Port: "in", Elem: "speed"},
			Reads:   []PortRef{{Port: "in", Elem: "speed"}},
		}},
		MemoryKB: 16,
	}
}

func testSystem() *System {
	pi := speedIface()
	return &System{
		Name:       "test",
		Interfaces: []*PortInterface{pi},
		Components: []*SWC{sensorSWC(pi), ctrlSWC(pi)},
		ECUs: []*ECU{
			{Name: "ecu1", Speed: 1, MemoryKB: 256, Buses: []string{"can0"}, Position: [2]float64{0, 0}, MaxASIL: ASILD},
			{Name: "ecu2", Speed: 1, MemoryKB: 256, Buses: []string{"can0"}, Position: [2]float64{3, 4}, MaxASIL: ASILD},
		},
		Buses:      []*Bus{{Name: "can0", Kind: BusCAN, BitRate: 500_000}},
		Connectors: []Connector{{FromSWC: "WheelSensor", FromPort: "out", ToSWC: "BrakeCtrl", ToPort: "in"}},
		Constraints: []LatencyConstraint{{
			Name:   "brakeChain",
			Chain:  []PortRef2{{SWC: "WheelSensor", Port: "out"}, {SWC: "BrakeCtrl", Port: "in"}},
			Budget: sim.MS(10),
		}},
		Mapping: map[string]string{"WheelSensor": "ecu1", "BrakeCtrl": "ecu2"},
	}
}

func TestSystemValidateOK(t *testing.T) {
	if err := testSystem().Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*System)
		want string
	}{
		{"unknown connector provider", func(s *System) { s.Connectors[0].FromSWC = "nope" }, "unknown provider"},
		{"wrong port direction", func(s *System) {
			s.Connectors[0] = Connector{FromSWC: "BrakeCtrl", FromPort: "in", ToSWC: "WheelSensor", ToPort: "out"}
		}, "not a provided port"},
		{"mapping to unknown ecu", func(s *System) { s.Mapping["WheelSensor"] = "ghost" }, "unknown ECU"},
		{"constraint unknown component", func(s *System) { s.Constraints[0].Chain[0].SWC = "ghost" }, "unknown component"},
		{"short chain", func(s *System) { s.Constraints[0].Chain = s.Constraints[0].Chain[:1] }, "at least two"},
		{"duplicate component", func(s *System) { s.Components = append(s.Components, s.Components[0]) }, "duplicate component"},
		{"zero bit rate", func(s *System) { s.Buses[0].BitRate = 0 }, "bit rate"},
		{"ecu on unknown bus", func(s *System) { s.ECUs[0].Buses = []string{"lin9"} }, "unknown bus"},
		{"non-positive ecu speed", func(s *System) { s.ECUs[0].Speed = 0 }, "speed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := testSystem()
			c.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid system accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestSWCValidateRejects(t *testing.T) {
	pi := speedIface()
	cases := []struct {
		name string
		mut  func(*SWC)
	}{
		{"no runnables", func(c *SWC) { c.Runnables = nil }},
		{"zero wcet", func(c *SWC) { c.Runnables[0].WCETNominal = 0 }},
		{"bcet above wcet", func(c *SWC) { c.Runnables[0].BCET = c.Runnables[0].WCETNominal * 2 }},
		{"zero period", func(c *SWC) { c.Runnables[0].Trigger.Period = 0 }},
		{"write unknown port", func(c *SWC) { c.Runnables[0].Writes = []PortRef{{Port: "ghost"}} }},
		{"duplicate port", func(c *SWC) { c.Ports = append(c.Ports, c.Ports[0]) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			swc := sensorSWC(pi)
			c.mut(swc)
			if swc.Validate() == nil {
				t.Fatal("invalid SWC accepted")
			}
		})
	}
}

func TestInterfaceCompatibility(t *testing.T) {
	prov := &PortInterface{Name: "P", Kind: SenderReceiver, Elements: []DataElement{
		{Name: "a", Type: UInt16}, {Name: "b", Type: UInt8},
	}}
	req := &PortInterface{Name: "R", Kind: SenderReceiver, Elements: []DataElement{
		{Name: "a", Type: UInt16},
	}}
	if err := Compatible(req, prov); err != nil {
		t.Fatalf("superset provider rejected: %v", err)
	}
	req2 := &PortInterface{Name: "R2", Kind: SenderReceiver, Elements: []DataElement{
		{Name: "a", Type: UInt32}, // wrong width
	}}
	if Compatible(req2, prov) == nil {
		t.Fatal("width mismatch accepted")
	}
	req3 := &PortInterface{Name: "R3", Kind: ClientServer, Operations: []Operation{{Name: "x"}}}
	if Compatible(req3, prov) == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestClientServerCompatibility(t *testing.T) {
	prov := &PortInterface{Name: "P", Kind: ClientServer, Operations: []Operation{
		{Name: "Apply", Args: []DataElement{{Name: "force", Type: UInt16}}},
	}}
	req := &PortInterface{Name: "R", Kind: ClientServer, Operations: []Operation{
		{Name: "Apply", Args: []DataElement{{Name: "f", Type: UInt16}}},
	}}
	if err := Compatible(req, prov); err != nil {
		t.Fatalf("matching operation rejected: %v", err)
	}
	req.Operations[0].Args = nil
	if Compatible(req, prov) == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestUtilization(t *testing.T) {
	pi := speedIface()
	c := sensorSWC(pi) // 100us / 5ms = 0.02
	if u := c.Utilization(); u < 0.0199 || u > 0.0201 {
		t.Fatalf("utilization = %v, want 0.02", u)
	}
	// Data-received runnables contribute no periodic utilization.
	if u := ctrlSWC(pi).Utilization(); u != 0 {
		t.Fatalf("event-triggered utilization = %v, want 0", u)
	}
}

func TestHarnessLengthAndUsedECUs(t *testing.T) {
	s := testSystem()
	if got := s.HarnessLength(); got < 4.99 || got > 5.01 {
		t.Fatalf("harness length = %v, want 5 (3-4-5 triangle)", got)
	}
	if used := s.UsedECUs(); len(used) != 2 {
		t.Fatalf("used ECUs = %v, want 2", used)
	}
	// Co-locating both components removes the remote connector.
	s.Mapping["BrakeCtrl"] = "ecu1"
	if got := s.HarnessLength(); got != 0 {
		t.Fatalf("co-located harness length = %v, want 0", got)
	}
	if used := s.UsedECUs(); len(used) != 1 || used[0] != "ecu1" {
		t.Fatalf("used ECUs = %v, want [ecu1]", used)
	}
}

func TestECULoadScalesWithSpeed(t *testing.T) {
	s := testSystem()
	s.Mapping = map[string]string{"WheelSensor": "ecu1"}
	base := s.ECULoad("ecu1")
	s.ECUs[0].Speed = 2
	if got := s.ECULoad("ecu1"); got != base/2 {
		t.Fatalf("load at speed 2 = %v, want %v", got, base/2)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testSystem()
	c := s.Clone()
	c.Mapping["WheelSensor"] = "ecu2"
	c.Components[0].Runnables[0].WCETNominal = sim.MS(99)
	c.Connectors[0].FromSWC = "X"
	if s.Mapping["WheelSensor"] != "ecu1" {
		t.Fatal("clone shares mapping")
	}
	if s.Components[0].Runnables[0].WCETNominal == sim.MS(99) {
		t.Fatal("clone shares runnables")
	}
	if s.Connectors[0].FromSWC == "X" {
		t.Fatal("clone shares connectors")
	}
	if err := c.Validate(); err == nil {
		// c was mutated to be invalid; original must still validate
		t.Log("clone validation did not fail, mutations were benign")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestConfigRebindRules(t *testing.T) {
	var cs ConfigSet
	cs.Set("busSpeed", PreCompile, "500k")
	cs.Set("nodeId", PostBuild, "7")
	if err := cs.Rebind("busSpeed", PreCompile, "250k"); err != nil {
		t.Fatalf("pre-compile rebind at pre-compile stage failed: %v", err)
	}
	if err := cs.Rebind("busSpeed", LinkTime, "125k"); err == nil {
		t.Fatal("pre-compile parameter rebound after compile")
	}
	if err := cs.Rebind("nodeId", PostBuild, "9"); err != nil {
		t.Fatalf("post-build rebind failed: %v", err)
	}
	if v, _ := cs.Get("nodeId"); v != "9" {
		t.Fatalf("nodeId = %q, want 9", v)
	}
	if err := cs.Rebind("ghost", PreCompile, "x"); err == nil {
		t.Fatal("unknown parameter rebound")
	}
	if names := cs.ByClass(PostBuild); len(names) != 1 || names[0] != "nodeId" {
		t.Fatalf("ByClass = %v", names)
	}
}

func TestDataTypeValidate(t *testing.T) {
	bad := DataType{Name: "x", Bits: 0}
	if bad.Validate() == nil {
		t.Fatal("zero-width type accepted")
	}
	bad = DataType{Name: "x", Bits: 65}
	if bad.Validate() == nil {
		t.Fatal("65-bit type accepted")
	}
	bad = DataType{Name: "x", Bits: 8, Min: 10, Max: 5}
	if bad.Validate() == nil {
		t.Fatal("inverted range accepted")
	}
	if UInt16.Validate() != nil || Bool.Validate() != nil {
		t.Fatal("standard type rejected")
	}
}

func TestStringers(t *testing.T) {
	if SenderReceiver.String() != "sender-receiver" || ClientServer.String() != "client-server" {
		t.Fatal("interface kind names")
	}
	if Provided.String() != "provided" || Required.String() != "required" {
		t.Fatal("direction names")
	}
	if ASILD.String() != "ASIL-D" || QM.String() != "QM" {
		t.Fatal("ASIL names")
	}
	if BusCAN.String() != "CAN" || BusFlexRay.String() != "FlexRay" || BusTTP.String() != "TTP" {
		t.Fatal("bus names")
	}
	if TimingEvent.String() != "timing" || DataReceivedEvent.String() != "data-received" {
		t.Fatal("event kind names")
	}
	if PreCompile.String() != "pre-compile" || PostBuild.String() != "post-build" {
		t.Fatal("config class names")
	}
}
