package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	s := testSystem()
	var buf bytes.Buffer
	if err := Export(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name {
		t.Errorf("name %q != %q", got.Name, s.Name)
	}
	if len(got.Components) != len(s.Components) || len(got.ECUs) != len(s.ECUs) ||
		len(got.Buses) != len(s.Buses) || len(got.Connectors) != len(s.Connectors) {
		t.Fatal("structure counts differ after round trip")
	}
	gc := got.Component("WheelSensor")
	sc := s.Component("WheelSensor")
	if gc == nil {
		t.Fatal("WheelSensor lost in round trip")
	}
	if gc.Runnables[0].WCETNominal != sc.Runnables[0].WCETNominal {
		t.Errorf("WCET %v != %v", gc.Runnables[0].WCETNominal, sc.Runnables[0].WCETNominal)
	}
	if gc.Runnables[0].Trigger.Period != sc.Runnables[0].Trigger.Period {
		t.Errorf("period changed in round trip")
	}
	if gc.ASIL != ASILD || gc.Supplier != "TierA" {
		t.Errorf("metadata lost: %+v", gc)
	}
	if got.Mapping["BrakeCtrl"] != "ecu2" {
		t.Errorf("mapping lost")
	}
	if len(got.Constraints) != 1 || got.Constraints[0].Budget != s.Constraints[0].Budget {
		t.Errorf("constraints lost")
	}
	// Interfaces must be shared, not duplicated per port.
	if gc.Ports[0].Interface != got.Interfaces[0] {
		t.Error("port interface not resolved to catalogue entry")
	}
}

func TestImportRejectsUnknownInterface(t *testing.T) {
	doc := `{"formatVersion":1,"system":"s","interfaces":[],"components":[
		{"name":"c","ports":[{"name":"p","direction":"provided","interface":"ghost"}],
		 "runnables":[{"name":"r","wcetUs":10,"trigger":{"kind":"timing","periodUs":1000}}]}],
		"ecus":[],"buses":[],"connectors":[]}`
	_, err := Import(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "unknown interface") {
		t.Fatalf("err = %v, want unknown interface", err)
	}
}

func TestImportRejectsBadVersion(t *testing.T) {
	doc := `{"formatVersion":99,"system":"s","interfaces":[],"components":[],"ecus":[],"buses":[],"connectors":[]}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("wrong format version accepted")
	}
}

func TestImportRejectsUnknownFields(t *testing.T) {
	doc := `{"formatVersion":1,"system":"s","bogus":true,"interfaces":[],"components":[],"ecus":[],"buses":[],"connectors":[]}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
}

func TestImportValidatesSemantics(t *testing.T) {
	// A structurally parseable but semantically invalid doc (connector to
	// a missing component) must be rejected by validation.
	s := testSystem()
	var buf bytes.Buffer
	if err := Export(&buf, s); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), `"BrakeCtrl"`, `"Ghost"`, 1)
	if _, err := Import(strings.NewReader(broken)); err == nil {
		t.Fatal("semantically invalid import accepted")
	}
}

func TestImportRejectsBadEnums(t *testing.T) {
	for _, doc := range []string{
		`{"formatVersion":1,"system":"s","interfaces":[{"name":"i","kind":"mystery","elements":[{"Name":"a","Type":{"Name":"UInt8","Bits":8},"Queued":false}]}],"components":[],"ecus":[],"buses":[],"connectors":[]}`,
		`{"formatVersion":1,"system":"s","interfaces":[],"components":[{"name":"c","asil":"ASIL-Z","runnables":[{"name":"r","wcetUs":1,"trigger":{"kind":"timing","periodUs":100}}]}],"ecus":[],"buses":[],"connectors":[]}`,
		`{"formatVersion":1,"system":"s","interfaces":[],"components":[{"name":"c","runnables":[{"name":"r","wcetUs":1,"trigger":{"kind":"psychic","periodUs":100}}]}],"ecus":[],"buses":[],"connectors":[]}`,
	} {
		if _, err := Import(strings.NewReader(doc)); err == nil {
			t.Fatalf("bad enum accepted in %s", doc[:60])
		}
	}
}
