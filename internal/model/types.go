// Package model defines the AUTOSAR-like meta-model used throughout
// autorte: data types, port interfaces, software components (SWCs) with
// runnables and RTE events, ECU resource descriptions, buses, system
// constraints and the JSON exchange format ("templates").
//
// The meta-model mirrors the concepts §2 of the paper lists as AUTOSAR's
// contribution — standardized interfaces, the Virtual Functional Bus,
// configuration classes, function catalogues — while staying small enough
// to analyze. Everything here is pure description; behaviour lives in the
// rte, osek and bus packages.
package model

import "fmt"

// DataType describes an application data type carried over ports and
// packed into bus signals.
type DataType struct {
	Name string
	Bits int // width when packed into a frame (1..64)
	// Min/Max bound the physical value range; used by contracts for
	// value-domain assumptions (e.g. a plausible wheel-speed range).
	Min, Max float64
	Initial  float64 // initial value of unqueued communication
}

// Validate checks structural well-formedness.
func (d *DataType) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("data type with empty name")
	}
	if d.Bits < 1 || d.Bits > 64 {
		return fmt.Errorf("data type %s: width %d bits outside 1..64", d.Name, d.Bits)
	}
	if d.Max < d.Min {
		return fmt.Errorf("data type %s: max %g < min %g", d.Name, d.Max, d.Min)
	}
	return nil
}

// Standard scalar types most examples use.
var (
	Bool   = DataType{Name: "Boolean", Bits: 1, Min: 0, Max: 1}
	UInt8  = DataType{Name: "UInt8", Bits: 8, Min: 0, Max: 255}
	UInt16 = DataType{Name: "UInt16", Bits: 16, Min: 0, Max: 65535}
	Int16  = DataType{Name: "Int16", Bits: 16, Min: -32768, Max: 32767}
	UInt32 = DataType{Name: "UInt32", Bits: 32, Min: 0, Max: 4294967295}
	Float  = DataType{Name: "Float", Bits: 32, Min: -3.4e38, Max: 3.4e38}
)

// InterfaceKind distinguishes the two AUTOSAR communication paradigms.
type InterfaceKind uint8

const (
	// SenderReceiver is asynchronous data-flow communication.
	SenderReceiver InterfaceKind = iota
	// ClientServer is request/response operation invocation.
	ClientServer
)

func (k InterfaceKind) String() string {
	if k == SenderReceiver {
		return "sender-receiver"
	}
	return "client-server"
}

// DataElement is one named value in a sender-receiver interface.
type DataElement struct {
	Name   string
	Type   DataType
	Queued bool // queued (event) vs unqueued (last-is-best) semantics
}

// Operation is one callable in a client-server interface.
type Operation struct {
	Name string
	// Args and Result describe the payload for packing; semantics are
	// opaque to the platform.
	Args   []DataElement
	Result *DataType
}

// PortInterface is a standardized interface published in a function
// catalogue. Components are compatible when their port interfaces match by
// structure, not by name ("clear semantics of the interface are being
// published in function catalogues", §2).
type PortInterface struct {
	Name       string
	Kind       InterfaceKind
	Elements   []DataElement // for SenderReceiver
	Operations []Operation   // for ClientServer
}

// Validate checks structural well-formedness.
func (pi *PortInterface) Validate() error {
	if pi.Name == "" {
		return fmt.Errorf("port interface with empty name")
	}
	switch pi.Kind {
	case SenderReceiver:
		if len(pi.Elements) == 0 {
			return fmt.Errorf("interface %s: sender-receiver with no data elements", pi.Name)
		}
		if len(pi.Operations) != 0 {
			return fmt.Errorf("interface %s: sender-receiver with operations", pi.Name)
		}
		seen := map[string]bool{}
		for i := range pi.Elements {
			e := &pi.Elements[i]
			if err := e.Type.Validate(); err != nil {
				return fmt.Errorf("interface %s element %s: %w", pi.Name, e.Name, err)
			}
			if seen[e.Name] {
				return fmt.Errorf("interface %s: duplicate element %s", pi.Name, e.Name)
			}
			seen[e.Name] = true
		}
	case ClientServer:
		if len(pi.Operations) == 0 {
			return fmt.Errorf("interface %s: client-server with no operations", pi.Name)
		}
		if len(pi.Elements) != 0 {
			return fmt.Errorf("interface %s: client-server with data elements", pi.Name)
		}
	default:
		return fmt.Errorf("interface %s: unknown kind %d", pi.Name, pi.Kind)
	}
	return nil
}

// Compatible reports whether a required interface can be satisfied by a
// provided one: same kind and the provider covers every element/operation
// the requirer needs, with identical widths and value ranges.
func Compatible(required, provided *PortInterface) error {
	if required.Kind != provided.Kind {
		return fmt.Errorf("kind mismatch: required %v, provided %v", required.Kind, provided.Kind)
	}
	switch required.Kind {
	case SenderReceiver:
		prov := map[string]*DataElement{}
		for i := range provided.Elements {
			prov[provided.Elements[i].Name] = &provided.Elements[i]
		}
		for i := range required.Elements {
			req := &required.Elements[i]
			p, ok := prov[req.Name]
			if !ok {
				return fmt.Errorf("provider %s lacks element %s", provided.Name, req.Name)
			}
			if p.Type.Bits != req.Type.Bits {
				return fmt.Errorf("element %s: width %d != %d", req.Name, p.Type.Bits, req.Type.Bits)
			}
			if p.Queued != req.Queued {
				return fmt.Errorf("element %s: queued mismatch", req.Name)
			}
		}
	case ClientServer:
		prov := map[string]*Operation{}
		for i := range provided.Operations {
			prov[provided.Operations[i].Name] = &provided.Operations[i]
		}
		for i := range required.Operations {
			req := &required.Operations[i]
			p, ok := prov[req.Name]
			if !ok {
				return fmt.Errorf("provider %s lacks operation %s", provided.Name, req.Name)
			}
			if len(p.Args) != len(req.Args) {
				return fmt.Errorf("operation %s: arity %d != %d", req.Name, len(p.Args), len(req.Args))
			}
		}
	}
	return nil
}
