package model

import (
	"fmt"

	"autorte/internal/sim"
)

// PortDirection distinguishes provided from required ports.
type PortDirection uint8

const (
	// Provided ports (AUTOSAR P-ports) offer an interface.
	Provided PortDirection = iota
	// Required ports (AUTOSAR R-ports) consume an interface.
	Required
)

func (d PortDirection) String() string {
	if d == Provided {
		return "provided"
	}
	return "required"
}

// Port is a typed connection point of a software component.
type Port struct {
	Name      string
	Direction PortDirection
	Interface *PortInterface
}

// EventKind enumerates the RTE events that can trigger a runnable.
type EventKind uint8

const (
	// TimingEvent triggers periodically.
	TimingEvent EventKind = iota
	// DataReceivedEvent triggers when a data element arrives on a port.
	DataReceivedEvent
	// OperationInvokedEvent triggers when a server operation is called.
	OperationInvokedEvent
	// ModeSwitchEvent triggers on a platform mode change (e.g. an error
	// handling mode entered after a detected sensor fault, §2).
	ModeSwitchEvent
)

func (k EventKind) String() string {
	switch k {
	case TimingEvent:
		return "timing"
	case DataReceivedEvent:
		return "data-received"
	case OperationInvokedEvent:
		return "operation-invoked"
	default:
		return "mode-switch"
	}
}

// Trigger attaches an RTE event to a runnable.
type Trigger struct {
	Kind   EventKind
	Period sim.Duration // TimingEvent: activation period
	Offset sim.Duration // TimingEvent: first activation offset
	Port   string       // DataReceivedEvent / OperationInvokedEvent: port name
	Elem   string       // element or operation name on that port
	Mode   string       // ModeSwitchEvent: mode name
}

// Runnable is the schedulable unit inside a component: a piece of
// application code with a WCET, triggered by RTE events, reading and
// writing ports. The paper's "vertical assumptions" decorate runnables
// with resource budgets; WCETNominal is that budget.
type Runnable struct {
	Name        string
	WCETNominal sim.Duration // execution demand on the reference core
	BCET        sim.Duration // best case; 0 means equal to WCET
	Trigger     Trigger
	Reads       []PortRef    // data read at start
	Writes      []PortRef    // data written at completion
	Deadline    sim.Duration // relative deadline; 0 means the period
}

// PortRef names a data element on a component port.
type PortRef struct {
	Port string
	Elem string
}

// SWC is an atomic AUTOSAR-like software component: ports plus runnables
// plus internal behaviour description. SWCs are the unit of supplier
// delivery and of deployment to ECUs.
type SWC struct {
	Name      string
	Supplier  string // IP owner; timing isolation is evaluated per supplier
	DAS       string // distributed application subsystem (power-train, chassis, ...)
	ASIL      ASIL   // criticality
	Ports     []Port
	Runnables []Runnable
	// MemoryKB approximates the RAM footprint, consumed from ECU resources
	// at deployment time.
	MemoryKB int
	Config   ConfigSet // configuration parameters by class
	// Redundancy declares the component's fail-operational replication
	// requirement. The zero value means a single, unreplicated instance.
	Redundancy Redundancy
	// ReplicaOf names the primary this component is a standby replica of.
	// Empty on primaries; set by deploy.Replicate when it materializes the
	// standby instances of a redundancy spec.
	ReplicaOf string `json:",omitempty"`
}

// ReplicaMode selects how a standby replica consumes resources before a
// fail-over promotes it (Becker et al.'s active/passive distinction).
type ReplicaMode uint8

const (
	// StandbyPassive replicas are deployed — they consume memory and keep
	// warm input state — but their runnables stay suspended until a
	// fail-over promotes them, so they demand no CPU in the normal case.
	// The deployment analysis checks instead that the hosting ECU can
	// absorb their load after the primary's ECU fails.
	StandbyPassive ReplicaMode = iota
	// StandbyActive replicas run continuously (hot redundancy): full CPU
	// demand in the normal case, instantaneous takeover on fail-over.
	StandbyActive
)

func (m ReplicaMode) String() string {
	switch m {
	case StandbyPassive:
		return "passive"
	case StandbyActive:
		return "active"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Redundancy is the per-SWC fail-operational replication spec.
type Redundancy struct {
	// Replicas is the total number of deployed instances, primary
	// included. 0 and 1 both mean "no redundancy".
	Replicas int
	// Mode selects passive (default) or active standby behaviour.
	Mode ReplicaMode
}

// Replicated reports whether the spec asks for at least one standby.
func (r Redundancy) Replicated() bool { return r.Replicas > 1 }

// IsStandby reports whether this component is a materialized standby
// replica of another component.
func (c *SWC) IsStandby() bool { return c.ReplicaOf != "" }

// PassiveStandby reports whether this component is a standby replica that
// stays suspended (zero CPU demand) until promoted. The capacity model
// (AnalyzedLoad, taskset.Build, the deployment evaluators) excludes
// passive standbys from normal-case load and schedulability; the
// fail-over validity check in deploy covers their post-promotion demand.
func (c *SWC) PassiveStandby() bool {
	return c.ReplicaOf != "" && c.Redundancy.Mode == StandbyPassive
}

// ASIL is the automotive safety integrity level (ISO 26262 scale, with QM
// as the non-safety class). The paper predates ISO 26262 but its notion of
// "DASes of different criticality" maps directly.
type ASIL uint8

const (
	QM ASIL = iota
	ASILA
	ASILB
	ASILC
	ASILD
)

func (a ASIL) String() string {
	switch a {
	case QM:
		return "QM"
	case ASILA:
		return "ASIL-A"
	case ASILB:
		return "ASIL-B"
	case ASILC:
		return "ASIL-C"
	default:
		return "ASIL-D"
	}
}

// Port returns the named port, or nil.
func (c *SWC) Port(name string) *Port {
	for i := range c.Ports {
		if c.Ports[i].Name == name {
			return &c.Ports[i]
		}
	}
	return nil
}

// Runnable returns the named runnable, or nil.
func (c *SWC) Runnable(name string) *Runnable {
	for i := range c.Runnables {
		if c.Runnables[i].Name == name {
			return &c.Runnables[i]
		}
	}
	return nil
}

// Validate checks the component's internal consistency: ports well-formed,
// triggers referencing existing ports, WCETs positive.
func (c *SWC) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("component with empty name")
	}
	portSeen := map[string]bool{}
	for i := range c.Ports {
		p := &c.Ports[i]
		if p.Name == "" {
			return fmt.Errorf("component %s: port with empty name", c.Name)
		}
		if portSeen[p.Name] {
			return fmt.Errorf("component %s: duplicate port %s", c.Name, p.Name)
		}
		portSeen[p.Name] = true
		if p.Interface == nil {
			return fmt.Errorf("component %s port %s: nil interface", c.Name, p.Name)
		}
		if err := p.Interface.Validate(); err != nil {
			return fmt.Errorf("component %s port %s: %w", c.Name, p.Name, err)
		}
	}
	if len(c.Runnables) == 0 {
		return fmt.Errorf("component %s: no runnables", c.Name)
	}
	if c.Redundancy.Replicas < 0 {
		return fmt.Errorf("component %s: negative replica count %d", c.Name, c.Redundancy.Replicas)
	}
	if c.ReplicaOf != "" && c.Redundancy.Replicated() {
		return fmt.Errorf("component %s: standby replica of %s cannot itself request %d replicas", c.Name, c.ReplicaOf, c.Redundancy.Replicas)
	}
	if c.ReplicaOf == c.Name && c.Name != "" {
		return fmt.Errorf("component %s: replica of itself", c.Name)
	}
	runSeen := map[string]bool{}
	for i := range c.Runnables {
		r := &c.Runnables[i]
		if r.Name == "" {
			return fmt.Errorf("component %s: runnable with empty name", c.Name)
		}
		if runSeen[r.Name] {
			return fmt.Errorf("component %s: duplicate runnable %s", c.Name, r.Name)
		}
		runSeen[r.Name] = true
		if r.WCETNominal <= 0 {
			return fmt.Errorf("component %s runnable %s: non-positive WCET", c.Name, r.Name)
		}
		if r.BCET < 0 || (r.BCET > 0 && r.BCET > r.WCETNominal) {
			return fmt.Errorf("component %s runnable %s: BCET %v exceeds WCET %v", c.Name, r.Name, r.BCET, r.WCETNominal)
		}
		switch r.Trigger.Kind {
		case TimingEvent:
			if r.Trigger.Period <= 0 {
				return fmt.Errorf("component %s runnable %s: timing event with non-positive period", c.Name, r.Name)
			}
		case DataReceivedEvent, OperationInvokedEvent:
			if !portSeen[r.Trigger.Port] {
				return fmt.Errorf("component %s runnable %s: trigger references unknown port %q", c.Name, r.Name, r.Trigger.Port)
			}
		case ModeSwitchEvent:
			if r.Trigger.Mode == "" {
				return fmt.Errorf("component %s runnable %s: mode-switch trigger with empty mode", c.Name, r.Name)
			}
		}
		for _, ref := range r.Reads {
			if !portSeen[ref.Port] {
				return fmt.Errorf("component %s runnable %s: access to unknown port %q", c.Name, r.Name, ref.Port)
			}
		}
		for _, ref := range r.Writes {
			if !portSeen[ref.Port] {
				return fmt.Errorf("component %s runnable %s: access to unknown port %q", c.Name, r.Name, ref.Port)
			}
		}
	}
	return nil
}

// Utilization returns the processor demand of the component's timing-
// triggered runnables (sum of WCET/period) on the reference core.
func (c *SWC) Utilization() float64 {
	u := 0.0
	for i := range c.Runnables {
		r := &c.Runnables[i]
		if r.Trigger.Kind == TimingEvent && r.Trigger.Period > 0 {
			u += float64(r.WCETNominal) / float64(r.Trigger.Period)
		}
	}
	return u
}
