package com

import (
	"testing"

	"autorte/internal/e2eprot"
	"autorte/internal/sim"
)

// protectedPdu is speedPdu with a P01 protection header in the two
// trailing payload bytes (signals occupy bits 0..24).
func protectedPdu() *IPdu {
	p := speedPdu()
	p.E2E = &e2eprot.Config{Profile: e2eprot.P01, DataID: 0x0C4A, Offset: 6}
	return p
}

func TestValidateReservesE2EHeader(t *testing.T) {
	if err := protectedPdu().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := protectedPdu()
	bad.Signals[2].StartBit = 44 // 44+8 runs into the header at bit 48
	if err := bad.Validate(); err == nil {
		t.Fatal("signal over E2E header accepted")
	}
	bad = protectedPdu()
	bad.E2E.Offset = 7 // 2-byte P01 header does not fit at byte 7 of 8
	if bad.Validate() == nil {
		t.Fatal("E2E header past payload accepted")
	}
	bad = protectedPdu()
	bad.E2E.MaxDeltaCounter = 20 // outside the P01 0..14 counter range
	if bad.Validate() == nil {
		t.Fatal("invalid E2E counter config accepted")
	}
}

func TestProtectedTransmitterRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	r := NewRouter()
	ch := &captureChannel{}
	pdu := protectedPdu()
	var statuses []e2eprot.Status
	v, err := NewVerifier(pdu, ch, k.Now)
	if err != nil {
		t.Fatal(err)
	}
	v.OnStatus = func(_ *IPdu, st e2eprot.Status) { statuses = append(statuses, st) }
	r.AddRoute(pdu.Name, v)
	tx, err := NewTransmitter(k, pdu, r)
	if err != nil {
		t.Fatal(err)
	}
	tx.Start()
	k.At(sim.MS(5), func() { tx.Update("wheelSpeed", 88.5) })
	k.Run(sim.MS(45))
	if tx.Sent() != 5 || len(ch.payloads) != 5 {
		t.Fatalf("sent %d forwarded %d, want 5/5", tx.Sent(), len(ch.payloads))
	}
	for _, st := range statuses {
		if st != e2eprot.StatusOK {
			t.Fatalf("protected transmission verified as %v", st)
		}
	}
	// The header does not disturb the signal layout.
	vals, err := pdu.Unpack(ch.payloads[len(ch.payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if vals["wheelSpeed"] != 88.5 {
		t.Fatalf("wheelSpeed through protected PDU = %v, want 88.5", vals["wheelSpeed"])
	}
}

func TestVerifierRejectsCorruption(t *testing.T) {
	pdu := protectedPdu()
	sink := &captureChannel{}
	v, err := NewVerifier(pdu, sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last e2eprot.Status
	v.OnStatus = func(_ *IPdu, st e2eprot.Status) { last = st }
	s := e2eprot.NewSender(*pdu.E2E)
	payload := pdu.Pack(map[string]float64{"wheelSpeed": 10})
	if err := s.Protect(payload); err != nil {
		t.Fatal(err)
	}
	payload[0] ^= 0x08
	v.SendPDU(pdu, payload)
	if last != e2eprot.StatusError || len(sink.payloads) != 0 {
		t.Fatalf("corrupted payload: status %v, forwarded %d", last, len(sink.payloads))
	}
}

func TestVerifierSupervise(t *testing.T) {
	pdu := protectedPdu()
	pdu.E2E.Timeout = sim.MS(25)
	v, err := NewVerifier(pdu, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := e2eprot.NewSender(*pdu.E2E)
	payload := pdu.Pack(nil)
	if err := s.Protect(payload); err != nil {
		t.Fatal(err)
	}
	v.SendPDU(pdu, payload)
	if st := v.Supervise(sim.MS(10)); st != e2eprot.StatusNoNewData {
		t.Fatalf("within timeout: %v", st)
	}
	if st := v.Supervise(sim.MS(40)); st != e2eprot.StatusNotAvailable {
		t.Fatalf("past timeout: %v", st)
	}
}

func TestNewVerifierValidation(t *testing.T) {
	if _, err := NewVerifier(speedPdu(), nil, nil); err == nil {
		t.Fatal("verifier over unprotected PDU accepted")
	}
	bad := protectedPdu()
	bad.E2E.Offset = 7
	if _, err := NewVerifier(bad, nil, nil); err == nil {
		t.Fatal("verifier over invalid PDU accepted")
	}
}

// gateway builds sender → segment 1 → gateway → segment 2 → sink, with
// tamper deciding how segment 1 delivers each payload to the gateway
// ingress. When protected, both the gateway ingress and the final
// receiver verify; statuses collects every ingress verdict.
func gateway(t *testing.T, k *sim.Kernel, pdu *IPdu, tamper func(deliver func([]byte), payload []byte)) (sink *captureChannel, statuses *[]e2eprot.Status) {
	t.Helper()
	sink = &captureChannel{}
	statuses = new([]e2eprot.Status)
	r2 := NewRouter()
	var egress Channel = sink
	if pdu.E2E != nil {
		ev, err := NewVerifier(pdu, sink, k.Now)
		if err != nil {
			t.Fatal(err)
		}
		egress = ev
	}
	r2.AddRoute(pdu.Name, egress)
	var ingress Channel = ChannelFunc(func(p *IPdu, b []byte) { r2.Route(p, b) })
	if pdu.E2E != nil {
		iv, err := NewVerifier(pdu, ingress, k.Now)
		if err != nil {
			t.Fatal(err)
		}
		iv.OnStatus = func(_ *IPdu, st e2eprot.Status) { *statuses = append(*statuses, st) }
		ingress = iv
	}
	r1 := NewRouter()
	r1.AddRoute(pdu.Name, ChannelFunc(func(p *IPdu, b []byte) {
		tamper(func(b2 []byte) { ingress.SendPDU(p, b2) }, b)
	}))
	tx, err := NewTransmitter(k, pdu, r1)
	if err != nil {
		t.Fatal(err)
	}
	tx.Start()
	return sink, statuses
}

func duplicating(deliver func([]byte), payload []byte) {
	deliver(payload)
	deliver(append([]byte(nil), payload...))
}

// reordering delivers payloads in swapped pairs: A,B arrive as B,A.
func reorderer() func(deliver func([]byte), payload []byte) {
	var held []byte
	return func(deliver func([]byte), payload []byte) {
		if held == nil {
			held = append([]byte(nil), payload...)
			return
		}
		deliver(payload)
		deliver(held)
		held = nil
	}
}

func TestGatewayDuplicatesProtected(t *testing.T) {
	k := sim.NewKernel()
	sink, statuses := gateway(t, k, protectedPdu(), duplicating)
	k.Run(sim.MS(45)) // 5 periodic sends, each duplicated on segment 1
	if len(sink.payloads) != 5 {
		t.Fatalf("sink got %d payloads, want 5 (duplicates dropped at the gateway)", len(sink.payloads))
	}
	rep := 0
	for _, st := range *statuses {
		if st == e2eprot.StatusRepeated {
			rep++
		}
	}
	if rep != 5 {
		t.Fatalf("gateway flagged %d duplicates, want 5", rep)
	}
}

func TestGatewayDuplicatesUnprotected(t *testing.T) {
	k := sim.NewKernel()
	sink, _ := gateway(t, k, speedPdu(), duplicating)
	k.Run(sim.MS(45))
	// Nothing on the unprotected path notices: every duplicate reaches
	// the destination bus.
	if len(sink.payloads) != 10 {
		t.Fatalf("sink got %d payloads, want 10 (duplicates pass silently)", len(sink.payloads))
	}
}

func TestGatewayReorderProtected(t *testing.T) {
	k := sim.NewKernel()
	pdu := protectedPdu()
	pdu.E2E.MaxDeltaCounter = 1 // strict ordering
	sink, statuses := gateway(t, k, pdu, reorderer())
	k.Run(sim.MS(75)) // 8 sends = 4 swapped pairs
	ws := 0
	for _, st := range *statuses {
		if st == e2eprot.StatusWrongSequence {
			ws++
		}
	}
	// First of each swapped pair after init resyncs forward, the held
	// mate then steps backwards: every delivery except the very first is
	// out of sequence.
	if ws != 7 {
		t.Fatalf("gateway flagged %d out-of-sequence deliveries, want 7", ws)
	}
	if len(sink.payloads) != 1 {
		t.Fatalf("sink got %d payloads, want only the initial in-sequence one", len(sink.payloads))
	}
}

func TestGatewayReorderUnprotected(t *testing.T) {
	k := sim.NewKernel()
	sink, _ := gateway(t, k, speedPdu(), reorderer())
	k.Run(sim.MS(75))
	if len(sink.payloads) != 8 {
		t.Fatalf("sink got %d payloads, want all 8 (re-ordering passes silently)", len(sink.payloads))
	}
}
