package com

import (
	"testing"
	"testing/quick"

	"autorte/internal/sim"
)

func speedPdu() *IPdu {
	return &IPdu{
		Name: "PduChassis1", Length: 8,
		Signals: []Signal{
			{Name: "wheelSpeed", StartBit: 0, Bits: 16, Scale: 0.01},           // 0..655.35
			{Name: "brakePressed", StartBit: 16, Bits: 1},                      // flag
			{Name: "temp", StartBit: 17, Bits: 8, Scale: 0.5, ZeroOffset: -40}, // -40..87.5
		},
		Mode: Periodic, Period: sim.MS(10),
	}
}

func TestPduValidate(t *testing.T) {
	if err := speedPdu().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := speedPdu()
	bad.Signals[1].StartBit = 10 // overlaps wheelSpeed
	if bad.Validate() == nil {
		t.Fatal("overlapping signals accepted")
	}
	bad = speedPdu()
	bad.Signals[0].Bits = 70
	if bad.Validate() == nil {
		t.Fatal("65+ bit signal accepted")
	}
	bad = speedPdu()
	bad.Signals[2].StartBit = 60 // 60+8 > 64
	if bad.Validate() == nil {
		t.Fatal("signal past payload accepted")
	}
	bad = speedPdu()
	bad.Period = 0
	if bad.Validate() == nil {
		t.Fatal("periodic PDU without period accepted")
	}
	bad = speedPdu()
	bad.Signals[2].Name = "wheelSpeed"
	if bad.Validate() == nil {
		t.Fatal("duplicate signal name accepted")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	pdu := speedPdu()
	in := map[string]float64{"wheelSpeed": 123.45, "brakePressed": 1, "temp": 21.5}
	payload := pdu.Pack(in)
	out, err := pdu.Unpack(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out["wheelSpeed"] != 123.45 {
		t.Errorf("wheelSpeed = %v, want 123.45", out["wheelSpeed"])
	}
	if out["brakePressed"] != 1 {
		t.Errorf("brakePressed = %v, want 1", out["brakePressed"])
	}
	if out["temp"] != 21.5 {
		t.Errorf("temp = %v, want 21.5", out["temp"])
	}
}

func TestPackSaturates(t *testing.T) {
	pdu := speedPdu()
	out, err := pdu.Unpack(pdu.Pack(map[string]float64{"wheelSpeed": 1e9, "temp": -300}))
	if err != nil {
		t.Fatal(err)
	}
	if out["wheelSpeed"] != 655.35 {
		t.Errorf("over-range wheelSpeed = %v, want saturation at 655.35", out["wheelSpeed"])
	}
	if out["temp"] != -40 {
		t.Errorf("under-range temp = %v, want saturation at -40", out["temp"])
	}
}

func TestUnpackShortPayload(t *testing.T) {
	if _, err := speedPdu().Unpack([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestPackMissingSignalIsZeroRaw(t *testing.T) {
	pdu := speedPdu()
	out, err := pdu.Unpack(pdu.Pack(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out["temp"] != -40 { // raw 0 -> phys -40
		t.Errorf("missing temp unpacked to %v, want -40 (raw zero)", out["temp"])
	}
}

func TestBitPackingQuick(t *testing.T) {
	// Round-trip property across arbitrary aligned layouts.
	f := func(a uint16, b uint8, flag bool) bool {
		pdu := &IPdu{Name: "p", Length: 5, Mode: Direct, Signals: []Signal{
			{Name: "a", StartBit: 3, Bits: 16},
			{Name: "b", StartBit: 19, Bits: 8},
			{Name: "f", StartBit: 27, Bits: 1},
		}}
		if pdu.Validate() != nil {
			return false
		}
		fv := 0.0
		if flag {
			fv = 1
		}
		out, err := pdu.Unpack(pdu.Pack(map[string]float64{"a": float64(a), "b": float64(b), "f": fv}))
		if err != nil {
			return false
		}
		return out["a"] == float64(a) && out["b"] == float64(b) && out["f"] == fv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type captureChannel struct {
	payloads [][]byte
}

func (c *captureChannel) SendPDU(_ *IPdu, payload []byte) {
	c.payloads = append(c.payloads, payload)
}

func TestRouterFanOut(t *testing.T) {
	r := NewRouter()
	a, b := &captureChannel{}, &captureChannel{}
	pdu := speedPdu()
	r.AddRoute(pdu.Name, a)
	r.AddRoute(pdu.Name, b)
	if n := r.Route(pdu, []byte{1}); n != 2 {
		t.Fatalf("routed to %d channels, want 2", n)
	}
	if len(a.payloads) != 1 || len(b.payloads) != 1 {
		t.Fatal("fan-out failed")
	}
	other := &IPdu{Name: "other", Length: 1, Mode: Direct}
	if n := r.Route(other, []byte{2}); n != 0 {
		t.Fatal("unrouted PDU delivered")
	}
}

func TestPeriodicTransmitter(t *testing.T) {
	k := sim.NewKernel()
	r := NewRouter()
	ch := &captureChannel{}
	pdu := speedPdu()
	r.AddRoute(pdu.Name, ch)
	tx, err := NewTransmitter(k, pdu, r)
	if err != nil {
		t.Fatal(err)
	}
	tx.Start()
	k.Run(sim.MS(95))
	// Initial send at 0 plus sends at 10..90: 10 payloads.
	if tx.Sent() != 10 {
		t.Fatalf("sent %d, want 10", tx.Sent())
	}
	// Latest value rides the next periodic send.
	if err := tx.Update("wheelSpeed", 50); err != nil {
		t.Fatal(err)
	}
	k.Run(sim.MS(105))
	last := ch.payloads[len(ch.payloads)-1]
	vals, _ := pdu.Unpack(last)
	if vals["wheelSpeed"] != 50 {
		t.Fatalf("periodic payload carries %v, want 50", vals["wheelSpeed"])
	}
}

func TestDirectTransmitterMinDelay(t *testing.T) {
	k := sim.NewKernel()
	r := NewRouter()
	ch := &captureChannel{}
	pdu := &IPdu{
		Name: "evt", Length: 1, Mode: Direct, MinDelay: sim.MS(5),
		Signals: []Signal{{Name: "x", StartBit: 0, Bits: 8}},
	}
	r.AddRoute("evt", ch)
	tx, err := NewTransmitter(k, pdu, r)
	if err != nil {
		t.Fatal(err)
	}
	tx.Start()
	k.At(0, func() { tx.Update("x", 1) })
	k.At(sim.MS(1), func() { tx.Update("x", 2) }) // inside MinDelay: suppressed
	k.At(sim.MS(6), func() { tx.Update("x", 3) }) // past MinDelay: sent
	k.Run(sim.MS(20))
	if tx.Sent() != 2 {
		t.Fatalf("sent %d, want 2 (one rate-limited)", tx.Sent())
	}
	vals, _ := pdu.Unpack(ch.payloads[1])
	if vals["x"] != 3 {
		t.Fatalf("second send carries %v, want 3", vals["x"])
	}
}

func TestMixedTransmitter(t *testing.T) {
	k := sim.NewKernel()
	r := NewRouter()
	ch := &captureChannel{}
	pdu := &IPdu{
		Name: "mix", Length: 1, Mode: Mixed, Period: sim.MS(10),
		Signals: []Signal{{Name: "x", StartBit: 0, Bits: 8}},
	}
	r.AddRoute("mix", ch)
	tx, _ := NewTransmitter(k, pdu, r)
	tx.Start()
	k.At(sim.MS(3), func() { tx.Update("x", 7) })
	k.Run(sim.MS(15))
	// Sends: t=0 (initial), t=3 (event), t=10 (periodic) = 3.
	if tx.Sent() != 3 {
		t.Fatalf("sent %d, want 3", tx.Sent())
	}
}

func TestTransmitterValidation(t *testing.T) {
	k := sim.NewKernel()
	bad := speedPdu()
	bad.Period = 0
	if _, err := NewTransmitter(k, bad, NewRouter()); err == nil {
		t.Fatal("invalid PDU accepted")
	}
	if _, err := NewTransmitter(k, speedPdu(), nil); err == nil {
		t.Fatal("nil router accepted")
	}
	tx, _ := NewTransmitter(k, speedPdu(), NewRouter())
	if err := tx.Update("ghost", 1); err == nil {
		t.Fatal("unknown signal update accepted")
	}
}

func TestGatewayForwardsBetweenChannels(t *testing.T) {
	// A PDU received from "CAN" is routed onto "FlexRay": router as
	// gateway for legacy traffic.
	r := NewRouter()
	flexray := &captureChannel{}
	pdu := speedPdu()
	r.AddRoute(pdu.Name, flexray)
	// Simulated reception callback from the CAN side:
	onCanRx := func(payload []byte) { r.Route(pdu, payload) }
	payload := pdu.Pack(map[string]float64{"wheelSpeed": 99.99})
	onCanRx(payload)
	if len(flexray.payloads) != 1 {
		t.Fatal("gateway did not forward")
	}
	vals, _ := pdu.Unpack(flexray.payloads[0])
	if v := vals["wheelSpeed"]; v < 99.989 || v > 99.991 {
		t.Fatalf("gatewayed value %v, want ~99.99 (one quantum = 0.01)", v)
	}
}

func TestTxModeString(t *testing.T) {
	if Periodic.String() != "periodic" || Direct.String() != "direct" || Mixed.String() != "mixed" {
		t.Fatal("tx mode names")
	}
}

func TestMotorolaRoundTrip(t *testing.T) {
	// Classic DBC Motorola example: 16-bit signal with MSB at bit 7
	// occupies byte0 (bits 7..0) then byte1 (bits 7..0).
	pdu := &IPdu{Name: "mot", Length: 4, Mode: Direct, Signals: []Signal{
		{Name: "a", StartBit: 7, Bits: 16, BigEndian: true},
		{Name: "b", StartBit: 23, Bits: 8, BigEndian: true},
	}}
	if err := pdu.Validate(); err != nil {
		t.Fatal(err)
	}
	payload := pdu.Pack(map[string]float64{"a": 0xABCD, "b": 0x5A})
	// Big-endian layout: byte0 = 0xAB, byte1 = 0xCD, byte2 = 0x5A.
	if payload[0] != 0xAB || payload[1] != 0xCD || payload[2] != 0x5A {
		t.Fatalf("motorola layout wrong: % X", payload)
	}
	out, err := pdu.Unpack(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out["a"] != 0xABCD || out["b"] != 0x5A {
		t.Fatalf("round trip wrong: %v", out)
	}
}

func TestMixedEndiannessOverlapDetected(t *testing.T) {
	pdu := &IPdu{Name: "mix", Length: 2, Mode: Direct, Signals: []Signal{
		{Name: "intel", StartBit: 0, Bits: 8},
		{Name: "mot", StartBit: 15, Bits: 12, BigEndian: true}, // walks into byte 0
	}}
	if pdu.Validate() == nil {
		t.Fatal("cross-endian overlap accepted")
	}
}

func TestMotorolaOutOfPayloadDetected(t *testing.T) {
	pdu := &IPdu{Name: "bad", Length: 1, Mode: Direct, Signals: []Signal{
		{Name: "x", StartBit: 3, Bits: 8, BigEndian: true}, // runs past bit 0 into byte 1 (absent)
	}}
	if pdu.Validate() == nil {
		t.Fatal("motorola overflow accepted")
	}
}

func TestIntelMotorolaQuick(t *testing.T) {
	f := func(v uint16, big bool) bool {
		start := 0
		if big {
			start = 7
		}
		pdu := &IPdu{Name: "q", Length: 2, Mode: Direct, Signals: []Signal{
			{Name: "v", StartBit: start, Bits: 16, BigEndian: big},
		}}
		if pdu.Validate() != nil {
			return false
		}
		out, err := pdu.Unpack(pdu.Pack(map[string]float64{"v": float64(v)}))
		return err == nil && out["v"] == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
