package com

import (
	"fmt"

	"autorte/internal/e2eprot"
	"autorte/internal/sim"
)

// Channel is anything that can carry a PDU payload: the bus adapters in
// package rte implement it over CAN and FlexRay, and tests use in-memory
// channels.
type Channel interface {
	// SendPDU queues the payload for transmission on the channel.
	SendPDU(pdu *IPdu, payload []byte)
}

// ChannelFunc adapts a function to the Channel interface.
type ChannelFunc func(pdu *IPdu, payload []byte)

// SendPDU implements Channel.
func (f ChannelFunc) SendPDU(pdu *IPdu, payload []byte) { f(pdu, payload) }

// Router is the PDU router: it fans each PDU out to its destination
// channels. Routing a PDU received from one bus onto another makes the
// router a gateway (legacy CAN overlay traffic onto an integrated
// architecture, §4).
type Router struct {
	routes map[string][]Channel
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{routes: map[string][]Channel{}} }

// AddRoute appends a destination channel for the named PDU.
func (r *Router) AddRoute(pduName string, ch Channel) {
	r.routes[pduName] = append(r.routes[pduName], ch)
}

// Route forwards a payload to every channel registered for the PDU.
// It returns how many channels received it.
func (r *Router) Route(pdu *IPdu, payload []byte) int {
	chs := r.routes[pdu.Name]
	for _, ch := range chs {
		ch.SendPDU(pdu, payload)
	}
	return len(chs)
}

// Verifier wraps a Channel with receive-side E2E verification: every
// payload is checked against the PDU's protection header before being
// forwarded, and non-OK receptions are dropped and reported through
// OnStatus. Wrapping each hop's ingress (including the gateway's) gives
// hop-by-hop detection while the protection header itself travels
// untouched from the sending runnable to the final receiver.
type Verifier struct {
	pdu  *IPdu
	rx   *e2eprot.Receiver
	next Channel
	now  func() sim.Time
	// OnStatus observes every check verdict, including the dropped ones.
	OnStatus func(pdu *IPdu, st e2eprot.Status)
}

// NewVerifier wraps next with verification for the protected PDU. The
// now func supplies virtual time for staleness supervision (nil means
// always time zero).
func NewVerifier(pdu *IPdu, next Channel, now func() sim.Time) (*Verifier, error) {
	if pdu.E2E == nil {
		return nil, fmt.Errorf("com: verifier for %s: PDU has no E2E config", pdu.Name)
	}
	if err := pdu.Validate(); err != nil {
		return nil, err
	}
	return &Verifier{pdu: pdu, rx: e2eprot.NewReceiver(*pdu.E2E), next: next, now: now}, nil
}

// Receiver exposes the underlying E2E receiver, e.g. for window state
// queries or a Reset after channel failover.
func (v *Verifier) Receiver() *e2eprot.Receiver { return v.rx }

func (v *Verifier) at() sim.Time {
	if v.now == nil {
		return 0
	}
	return v.now()
}

// SendPDU implements Channel: verify, then forward only OK receptions.
func (v *Verifier) SendPDU(pdu *IPdu, payload []byte) {
	st := v.rx.Check(v.at(), payload)
	if v.OnStatus != nil {
		v.OnStatus(pdu, st)
	}
	if st == e2eprot.StatusOK && v.next != nil {
		v.next.SendPDU(pdu, payload)
	}
}

// Supervise runs a timeout check with no reception: NoNewData within the
// configured Timeout, NotAvailable beyond it. The verdict feeds OnStatus
// like any reception.
func (v *Verifier) Supervise(now sim.Time) e2eprot.Status {
	st := v.rx.Check(now, nil)
	if v.OnStatus != nil {
		v.OnStatus(v.pdu, st)
	}
	return st
}

// Transmitter drives one I-PDU's transmission mode: it keeps the latest
// signal values and emits payloads to a router according to the PDU's
// mode (periodic timer, update-triggered, or both). Protected PDUs are
// stamped with their E2E header on every send.
type Transmitter struct {
	Pdu    *IPdu
	router *Router
	k      *sim.Kernel
	e2e    *e2eprot.Sender

	values   map[string]float64
	lastSend sim.Time
	sent     int64
	started  bool
}

// NewTransmitter validates the PDU and binds a transmitter to the kernel
// and router.
func NewTransmitter(k *sim.Kernel, pdu *IPdu, router *Router) (*Transmitter, error) {
	if err := pdu.Validate(); err != nil {
		return nil, err
	}
	if router == nil {
		return nil, fmt.Errorf("com: transmitter for %s: nil router", pdu.Name)
	}
	t := &Transmitter{Pdu: pdu, router: router, k: k, values: map[string]float64{}, lastSend: -1}
	if pdu.E2E != nil {
		t.e2e = e2eprot.NewSender(*pdu.E2E)
	}
	return t, nil
}

// Start arms the periodic timer for Periodic/Mixed PDUs.
func (t *Transmitter) Start() {
	if t.started {
		return
	}
	t.started = true
	if t.Pdu.Mode == Periodic || t.Pdu.Mode == Mixed {
		t.schedule(t.k.Now() + t.Pdu.Period)
		t.send() // initial transmission at start
	}
}

func (t *Transmitter) schedule(at sim.Time) {
	t.k.AtPrio(at, 15, func() {
		t.send()
		t.schedule(at + t.Pdu.Period)
	})
}

// Update stores a new physical value for a signal; Direct and Mixed PDUs
// transmit immediately unless inside the MinDelay window.
func (t *Transmitter) Update(signal string, value float64) error {
	if t.Pdu.Signal(signal) == nil {
		return fmt.Errorf("com: PDU %s has no signal %s", t.Pdu.Name, signal)
	}
	t.values[signal] = value
	if t.Pdu.Mode == Direct || t.Pdu.Mode == Mixed {
		now := t.k.Now()
		if t.lastSend >= 0 && now-t.lastSend < t.Pdu.MinDelay {
			return nil // rate-limited; value rides the next transmission
		}
		t.send()
	}
	return nil
}

// Sent returns how many payloads this transmitter emitted.
func (t *Transmitter) Sent() int64 { return t.sent }

func (t *Transmitter) send() {
	t.lastSend = t.k.Now()
	t.sent++
	payload := t.Pdu.Pack(t.values)
	if t.e2e != nil {
		_ = t.e2e.Protect(payload) //autovet:allow errreport Protect only fails on a payload/offset mismatch, validated against the PDU at build
	}
	t.router.Route(t.Pdu, payload)
}
