// Package com implements an AUTOSAR-COM-like communication stack layer:
// application signals are packed bit-exactly into I-PDUs, I-PDUs are
// transmitted under configurable transmission modes (periodic, direct,
// mixed) and routed to channels by a PDU router, which also acts as a
// gateway between buses (the "Gateway" box in the paper's Figure 1).
package com

import (
	"fmt"
	"math"

	"autorte/internal/e2eprot"
	"autorte/internal/sim"
)

// Signal describes one application value inside an I-PDU.
type Signal struct {
	Name string
	// StartBit is the bit offset inside the PDU payload. For Intel
	// (little-endian) signals it is the LSB position and bits ascend; for
	// Motorola (big-endian) signals it is the MSB position and bits walk
	// down within each byte, continuing at bit 7 of the next byte — the
	// classic DBC convention.
	StartBit int
	// Bits is the raw width (1..64).
	Bits int
	// BigEndian selects Motorola byte order (Intel when false).
	BigEndian bool
	// Scale and ZeroOffset convert physical to raw: raw = (phys - ZeroOffset) / Scale.
	// Scale 0 defaults to 1.
	Scale      float64
	ZeroOffset float64
}

func (s *Signal) scale() float64 {
	if s.Scale == 0 {
		return 1
	}
	return s.Scale
}

// ToRaw quantizes a physical value into the signal's raw integer range,
// saturating at the representable bounds.
func (s *Signal) ToRaw(phys float64) uint64 {
	raw := math.Round((phys - s.ZeroOffset) / s.scale())
	max := float64(uint64(1)<<uint(s.Bits) - 1)
	if raw < 0 {
		raw = 0
	}
	if raw > max {
		raw = max
	}
	return uint64(raw)
}

// FromRaw converts a raw integer back to the physical value.
func (s *Signal) FromRaw(raw uint64) float64 {
	return float64(raw)*s.scale() + s.ZeroOffset
}

// TxMode is the AUTOSAR-COM transmission mode of an I-PDU.
type TxMode uint8

const (
	// Periodic transmits every Period regardless of updates.
	Periodic TxMode = iota
	// Direct transmits on every signal update (rate-limited by MinDelay).
	Direct
	// Mixed transmits periodically and additionally on updates.
	Mixed
)

func (m TxMode) String() string {
	switch m {
	case Periodic:
		return "periodic"
	case Direct:
		return "direct"
	default:
		return "mixed"
	}
}

// IPdu is an interaction-layer PDU: a byte payload carrying packed
// signals.
type IPdu struct {
	Name    string
	Length  int // payload bytes (1..8 for classic CAN, larger for FlexRay)
	Signals []Signal
	Mode    TxMode
	// Period applies to Periodic and Mixed modes.
	Period sim.Duration
	// MinDelay rate-limits Direct/Mixed event transmissions.
	MinDelay sim.Duration
	// E2E, when non-nil, makes this a protected PDU: the transmitter
	// stamps an E2E protection header (CRC + sequence counter) into the
	// payload bytes the config reserves, and receive-side Verifiers check
	// it. Validate rejects signals laid out over the reserved header.
	E2E *e2eprot.Config
}

// Validate checks the PDU layout: signal fields inside the payload and
// non-overlapping.
func (p *IPdu) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("com: PDU with empty name")
	}
	if p.Length < 1 || p.Length > 254 {
		return fmt.Errorf("com: PDU %s: length %d outside 1..254", p.Name, p.Length)
	}
	used := make([]bool, p.Length*8)
	e2eFrom, e2eTo := -1, -1
	if p.E2E != nil {
		if err := p.E2E.Validate(p.Length); err != nil {
			return fmt.Errorf("com: PDU %s: %w", p.Name, err)
		}
		e2eFrom = p.E2E.Offset * 8
		e2eTo = (p.E2E.Offset + p.E2E.Profile.HeaderLen()) * 8
	}
	seen := map[string]bool{}
	for i := range p.Signals {
		s := &p.Signals[i]
		if s.Name == "" {
			return fmt.Errorf("com: PDU %s: signal with empty name", p.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("com: PDU %s: duplicate signal %s", p.Name, s.Name)
		}
		seen[s.Name] = true
		if s.Bits < 1 || s.Bits > 64 {
			return fmt.Errorf("com: PDU %s signal %s: width %d outside 1..64", p.Name, s.Name, s.Bits)
		}
		positions, err := s.bitPositions(len(used))
		if err != nil {
			return fmt.Errorf("com: PDU %s signal %s: %w", p.Name, s.Name, err)
		}
		for _, b := range positions {
			if b >= e2eFrom && b < e2eTo {
				return fmt.Errorf("com: PDU %s signal %s: overlaps the E2E protection header at bit %d", p.Name, s.Name, b)
			}
			if used[b] {
				return fmt.Errorf("com: PDU %s signal %s: overlaps another signal at bit %d", p.Name, s.Name, b)
			}
			used[b] = true
		}
	}
	if (p.Mode == Periodic || p.Mode == Mixed) && p.Period <= 0 {
		return fmt.Errorf("com: PDU %s: %v mode needs a positive period", p.Name, p.Mode)
	}
	return nil
}

// Signal returns the named signal, or nil.
func (p *IPdu) Signal(name string) *Signal {
	for i := range p.Signals {
		if p.Signals[i].Name == name {
			return &p.Signals[i]
		}
	}
	return nil
}

// bitPositions returns the payload bit indices the signal occupies, in
// MSB-to-LSB value order. Intel signals ascend from StartBit (LSB);
// Motorola signals walk down from StartBit (MSB) per the DBC convention.
func (s *Signal) bitPositions(payloadBits int) ([]int, error) {
	out := make([]int, s.Bits)
	if !s.BigEndian {
		if s.StartBit < 0 || s.StartBit+s.Bits > payloadBits {
			return nil, fmt.Errorf("bits [%d,%d) outside payload", s.StartBit, s.StartBit+s.Bits)
		}
		for i := 0; i < s.Bits; i++ {
			out[i] = s.StartBit + s.Bits - 1 - i // MSB first
		}
		return out, nil
	}
	pos := s.StartBit
	for i := 0; i < s.Bits; i++ {
		if pos < 0 || pos >= payloadBits {
			return nil, fmt.Errorf("motorola bit %d outside payload", pos)
		}
		out[i] = pos
		if pos%8 == 0 {
			pos += 15 // wrap to bit 7 of the next byte
		} else {
			pos--
		}
	}
	return out, nil
}

// Pack serializes physical signal values into a payload. Missing signals
// pack as zero raw value.
func (p *IPdu) Pack(values map[string]float64) []byte {
	payload := make([]byte, p.Length)
	for i := range p.Signals {
		s := &p.Signals[i]
		raw := uint64(0)
		if v, ok := values[s.Name]; ok {
			raw = s.ToRaw(v)
		}
		positions, _ := s.bitPositions(p.Length * 8)
		for j, pos := range positions {
			bit := (raw >> uint(s.Bits-1-j)) & 1
			if bit == 1 {
				payload[pos/8] |= 1 << uint(pos%8)
			}
		}
	}
	return payload
}

// Unpack deserializes a payload into physical values. Short payloads
// return an error (a communication fault the error-handling layer reports).
func (p *IPdu) Unpack(payload []byte) (map[string]float64, error) {
	if len(payload) < p.Length {
		return nil, fmt.Errorf("com: PDU %s: payload %d bytes, want %d", p.Name, len(payload), p.Length)
	}
	out := make(map[string]float64, len(p.Signals))
	for i := range p.Signals {
		s := &p.Signals[i]
		positions, err := s.bitPositions(p.Length * 8)
		if err != nil {
			return nil, fmt.Errorf("com: PDU %s signal %s: %w", p.Name, s.Name, err)
		}
		var raw uint64
		for _, pos := range positions {
			raw <<= 1
			if payload[pos/8]&(1<<uint(pos%8)) != 0 {
				raw |= 1
			}
		}
		out[s.Name] = s.FromRaw(raw)
	}
	return out, nil
}
