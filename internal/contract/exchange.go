package contract

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The contract exchange format: a JSON catalogue of rich interface
// specifications, shipped next to the system templates so OEMs and
// suppliers can exchange contracts without disclosing internals (§2's
// function catalogues extended with §3's richness).

type xCatalogue struct {
	FormatVersion int         `json:"formatVersion"`
	Contracts     []xContract `json:"contracts"`
}

type xContract struct {
	Component  string               `json:"component"`
	Assumes    []xCondition         `json:"assumes,omitempty"`
	Guarantees []xCondition         `json:"guarantees,omitempty"`
	Vertical   []VerticalAssumption `json:"vertical,omitempty"`
}

type xCondition struct {
	Kind string  `json:"kind"`
	Port string  `json:"port"`
	Elem string  `json:"elem,omitempty"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// CatalogueVersion is the current exchange format version.
const CatalogueVersion = 1

func kindName(k ConditionKind) string {
	switch k {
	case ValueRange:
		return "valueRange"
	case UpdateRate:
		return "updateRate"
	default:
		return "latency"
	}
}

func parseKindName(s string) (ConditionKind, error) {
	switch s {
	case "valueRange":
		return ValueRange, nil
	case "updateRate":
		return UpdateRate, nil
	case "latency":
		return Latency, nil
	}
	return 0, fmt.Errorf("contract: unknown condition kind %q", s)
}

// Export writes a contract catalogue as JSON, sorted deterministically by
// the caller's map iteration being replaced with sorted component names.
func Export(w io.Writer, contracts map[string]*Contract) error {
	names := make([]string, 0, len(contracts))
	for n := range contracts {
		names = append(names, n)
	}
	sort.Strings(names)
	doc := xCatalogue{FormatVersion: CatalogueVersion}
	for _, n := range names {
		c := contracts[n]
		if err := c.Validate(); err != nil {
			return err
		}
		xc := xContract{Component: c.Component, Vertical: c.Vertical}
		for _, a := range c.Assumes {
			xc.Assumes = append(xc.Assumes, xCondition{Kind: kindName(a.Kind), Port: a.Port, Elem: a.Elem, Lo: a.Lo, Hi: a.Hi})
		}
		for _, g := range c.Guarantees {
			xc.Guarantees = append(xc.Guarantees, xCondition{Kind: kindName(g.Kind), Port: g.Port, Elem: g.Elem, Lo: g.Lo, Hi: g.Hi})
		}
		doc.Contracts = append(doc.Contracts, xc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Import parses a contract catalogue and validates every contract.
func Import(r io.Reader) (map[string]*Contract, error) {
	var doc xCatalogue
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("contract: %w", err)
	}
	if doc.FormatVersion != CatalogueVersion {
		return nil, fmt.Errorf("contract: unsupported catalogue version %d", doc.FormatVersion)
	}
	out := map[string]*Contract{}
	for _, xc := range doc.Contracts {
		if _, dup := out[xc.Component]; dup {
			return nil, fmt.Errorf("contract: duplicate contract for %s", xc.Component)
		}
		c := &Contract{Component: xc.Component, Vertical: xc.Vertical}
		for _, a := range xc.Assumes {
			kind, err := parseKindName(a.Kind)
			if err != nil {
				return nil, err
			}
			c.Assumes = append(c.Assumes, Condition{Kind: kind, Port: a.Port, Elem: a.Elem, Lo: a.Lo, Hi: a.Hi})
		}
		for _, g := range xc.Guarantees {
			kind, err := parseKindName(g.Kind)
			if err != nil {
				return nil, err
			}
			c.Guarantees = append(c.Guarantees, Condition{Kind: kind, Port: g.Port, Elem: g.Elem, Lo: g.Lo, Hi: g.Hi})
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		out[c.Component] = c
	}
	return out, nil
}
