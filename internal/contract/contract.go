// Package contract implements the rich component interface specifications
// of §3: assume/guarantee contracts over port data (value ranges, update
// rates, latencies), vertical assumptions carrying resource budgets with
// confidence levels, compatibility checking between connected components,
// dominance (refinement) between contracts, and system-level composition
// that derives end-to-end guarantees and an overall confidence.
package contract

import (
	"fmt"

	"autorte/internal/sim"
)

// ConditionKind classifies what a clause constrains.
type ConditionKind uint8

const (
	// ValueRange bounds the physical value of a port element.
	ValueRange ConditionKind = iota
	// UpdateRate bounds the inter-update interval of a port element
	// (Lo/Hi are durations in nanoseconds).
	UpdateRate
	// Latency bounds the response delay from an input element to an
	// output element (Hi is the budget in nanoseconds).
	Latency
)

func (k ConditionKind) String() string {
	switch k {
	case ValueRange:
		return "value-range"
	case UpdateRate:
		return "update-rate"
	default:
		return "latency"
	}
}

// Condition is one interval clause over a port element.
type Condition struct {
	Kind ConditionKind
	// Port and Elem name the constrained data.
	Port, Elem string
	// Lo and Hi bound the interval. For Latency, Lo is usually 0 and Hi
	// the budget; for UpdateRate they bound the inter-arrival time.
	Lo, Hi float64
}

// Validate checks interval sanity.
func (c Condition) Validate() error {
	if c.Port == "" {
		return fmt.Errorf("contract: condition without port")
	}
	if c.Hi < c.Lo {
		return fmt.Errorf("contract: condition on %s.%s: hi %g < lo %g", c.Port, c.Elem, c.Hi, c.Lo)
	}
	return nil
}

// implies reports whether satisfying c guarantees satisfying other:
// c's interval is contained in other's.
func (c Condition) implies(other Condition) bool {
	return c.Kind == other.Kind && c.Port == other.Port && c.Elem == other.Elem &&
		c.Lo >= other.Lo && c.Hi <= other.Hi
}

// VerticalAssumption is a resource requirement on the platform below the
// component — "capturing resource requirements at system-level" (§3).
type VerticalAssumption struct {
	// Resource names what is needed: "cpu", "memKB", "bus".
	Resource string
	// Budget is the required amount (e.g. WCET in ns, utilization·1000,
	// kilobytes).
	Budget float64
	// Confidence in [0,1] reflects design experience in the estimate
	// ("assumptions can be annotated with confidence levels").
	Confidence float64
}

// Validate checks the assumption.
func (v VerticalAssumption) Validate() error {
	if v.Resource == "" {
		return fmt.Errorf("contract: vertical assumption without resource")
	}
	if v.Confidence < 0 || v.Confidence > 1 {
		return fmt.Errorf("contract: confidence %g outside [0,1]", v.Confidence)
	}
	if v.Budget < 0 {
		return fmt.Errorf("contract: negative budget")
	}
	return nil
}

// Contract is a rich interface specification of one component: what it
// assumes of its environment and what it guarantees in return, plus the
// vertical resource assumptions its guarantees rest on.
type Contract struct {
	Component  string
	Assumes    []Condition
	Guarantees []Condition
	Vertical   []VerticalAssumption
}

// Validate checks every clause.
func (c *Contract) Validate() error {
	if c.Component == "" {
		return fmt.Errorf("contract: contract without component")
	}
	for _, cond := range append(append([]Condition(nil), c.Assumes...), c.Guarantees...) {
		if err := cond.Validate(); err != nil {
			return fmt.Errorf("contract %s: %w", c.Component, err)
		}
	}
	for _, v := range c.Vertical {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("contract %s: %w", c.Component, err)
		}
	}
	return nil
}

// Confidence returns the weakest confidence among vertical assumptions
// (1 when there are none): the degree to which system-level analysis can
// be trusted.
func (c *Contract) Confidence() float64 {
	conf := 1.0
	for _, v := range c.Vertical {
		if v.Confidence < conf {
			conf = v.Confidence
		}
	}
	return conf
}

// Compatible checks one connection: every assumption the consumer makes
// about (consumerPort, elem) must be implied by some provider guarantee on
// (providerPort, elem). Port names are translated through the connector.
func Compatible(provider *Contract, providerPort string, consumer *Contract, consumerPort string) error {
	for _, a := range consumer.Assumes {
		if a.Port != consumerPort {
			continue
		}
		met := false
		for _, g := range provider.Guarantees {
			if g.Port != providerPort || g.Elem != a.Elem || g.Kind != a.Kind {
				continue
			}
			// Ports differ across the connector; only the interval matters.
			if g.Lo >= a.Lo && g.Hi <= a.Hi {
				met = true
				break
			}
		}
		if !met {
			return fmt.Errorf("contract: %s assumes %v on %s.%s in [%g,%g]; %s guarantees nothing that implies it",
				consumer.Component, a.Kind, consumerPort, a.Elem, a.Lo, a.Hi, provider.Component)
		}
	}
	return nil
}

// Dominates reports whether refined can replace abstract anywhere:
// weaker (or equal) assumptions and stronger (or equal) guarantees.
// This is the dominance analysis between contracts §3 describes.
func Dominates(refined, abstract *Contract) error {
	// Every assumption refined makes must already be granted by abstract's
	// assumptions (refined must not assume more).
	for _, ra := range refined.Assumes {
		granted := false
		for _, aa := range abstract.Assumes {
			if aa.implies(ra) {
				granted = true
				break
			}
		}
		if !granted {
			return fmt.Errorf("contract: %s assumes more than %s: %v %s.%s [%g,%g]",
				refined.Component, abstract.Component, ra.Kind, ra.Port, ra.Elem, ra.Lo, ra.Hi)
		}
	}
	// Every guarantee abstract gives must be implied by a refined
	// guarantee (refined must not promise less).
	for _, ag := range abstract.Guarantees {
		kept := false
		for _, rg := range refined.Guarantees {
			if rg.implies(ag) {
				kept = true
				break
			}
		}
		if !kept {
			return fmt.Errorf("contract: %s promises less than %s: missing %v %s.%s [%g,%g]",
				refined.Component, abstract.Component, ag.Kind, ag.Port, ag.Elem, ag.Lo, ag.Hi)
		}
	}
	return nil
}

// LatencyBudget extracts a component's latency guarantee between two
// ports, or 0 when none is declared.
func (c *Contract) LatencyBudget(fromPort, toPort string) sim.Duration {
	for _, g := range c.Guarantees {
		if g.Kind == Latency && g.Port == fromPort && g.Elem == toPort {
			return sim.Duration(g.Hi)
		}
	}
	return 0
}
