package contract

import (
	"bytes"
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

func sensorContract() *Contract {
	return &Contract{
		Component: "Sensor",
		Guarantees: []Condition{
			{Kind: ValueRange, Port: "out", Elem: "v", Lo: 0, Hi: 300},
			{Kind: UpdateRate, Port: "out", Elem: "v", Lo: float64(sim.MS(9)), Hi: float64(sim.MS(11))},
		},
		Vertical: []VerticalAssumption{
			{Resource: "cpu", Budget: float64(sim.US(50)), Confidence: 0.9},
		},
	}
}

func ctrlContract() *Contract {
	return &Contract{
		Component: "Ctrl",
		Assumes: []Condition{
			{Kind: ValueRange, Port: "in", Elem: "v", Lo: 0, Hi: 400},
			{Kind: UpdateRate, Port: "in", Elem: "v", Lo: float64(sim.MS(5)), Hi: float64(sim.MS(20))},
		},
		Guarantees: []Condition{
			{Kind: Latency, Port: "in", Elem: "cmd", Hi: float64(sim.MS(2))},
		},
		Vertical: []VerticalAssumption{
			{Resource: "cpu", Budget: float64(sim.US(200)), Confidence: 0.8},
		},
	}
}

func TestCompatibleOK(t *testing.T) {
	if err := Compatible(sensorContract(), "out", ctrlContract(), "in"); err != nil {
		t.Fatal(err)
	}
}

func TestCompatibleValueRangeViolation(t *testing.T) {
	cons := ctrlContract()
	cons.Assumes[0].Hi = 200 // consumer needs tighter range than guaranteed
	err := Compatible(sensorContract(), "out", cons, "in")
	if err == nil || !strings.Contains(err.Error(), "assumes") {
		t.Fatalf("range violation not caught: %v", err)
	}
}

func TestCompatibleRateViolation(t *testing.T) {
	cons := ctrlContract()
	cons.Assumes[1].Hi = float64(sim.MS(10)) // needs updates at least every 10ms; sensor may take 11
	if Compatible(sensorContract(), "out", cons, "in") == nil {
		t.Fatal("rate violation not caught")
	}
}

func TestCompatibleMissingGuarantee(t *testing.T) {
	prov := sensorContract()
	prov.Guarantees = prov.Guarantees[:1] // drop the rate guarantee
	if Compatible(prov, "out", ctrlContract(), "in") == nil {
		t.Fatal("missing guarantee not caught")
	}
}

func TestDominance(t *testing.T) {
	abstract := sensorContract()
	// A refined sensor: guarantees a tighter range at the same rate, and
	// assumes nothing new.
	refined := &Contract{
		Component: "SensorV2",
		Guarantees: []Condition{
			{Kind: ValueRange, Port: "out", Elem: "v", Lo: 0, Hi: 250},
			{Kind: UpdateRate, Port: "out", Elem: "v", Lo: float64(sim.MS(9)), Hi: float64(sim.MS(10))},
		},
	}
	if err := Dominates(refined, abstract); err != nil {
		t.Fatalf("valid refinement rejected: %v", err)
	}
	// A "refinement" that weakens the guarantee must fail.
	worse := &Contract{
		Component: "SensorCheap",
		Guarantees: []Condition{
			{Kind: ValueRange, Port: "out", Elem: "v", Lo: 0, Hi: 500},
			{Kind: UpdateRate, Port: "out", Elem: "v", Lo: float64(sim.MS(9)), Hi: float64(sim.MS(11))},
		},
	}
	if Dominates(worse, abstract) == nil {
		t.Fatal("weaker guarantee accepted as refinement")
	}
	// A refinement that assumes more must fail.
	needy := &Contract{
		Component:  "SensorNeedy",
		Assumes:    []Condition{{Kind: ValueRange, Port: "pwr", Elem: "volt", Lo: 11, Hi: 13}},
		Guarantees: abstract.Guarantees,
	}
	if Dominates(needy, abstract) == nil {
		t.Fatal("stronger assumption accepted as refinement")
	}
}

func TestDominanceReflexive(t *testing.T) {
	c := sensorContract()
	if err := Dominates(c, c); err != nil {
		t.Fatalf("contract does not dominate itself: %v", err)
	}
}

func TestValidation(t *testing.T) {
	c := sensorContract()
	c.Component = ""
	if c.Validate() == nil {
		t.Fatal("empty component accepted")
	}
	c = sensorContract()
	c.Guarantees[0].Hi = -1
	if c.Validate() == nil {
		t.Fatal("inverted interval accepted")
	}
	c = sensorContract()
	c.Vertical[0].Confidence = 1.5
	if c.Validate() == nil {
		t.Fatal("confidence > 1 accepted")
	}
}

func TestConfidence(t *testing.T) {
	c := ctrlContract()
	if c.Confidence() != 0.8 {
		t.Fatalf("confidence %v, want 0.8", c.Confidence())
	}
	c.Vertical = nil
	if c.Confidence() != 1 {
		t.Fatal("no vertical assumptions should give confidence 1")
	}
}

func minimalSystem() *model.System {
	pi := &model.PortInterface{
		Name: "If", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	mk := func(name string, dir model.PortDirection, port string) *model.SWC {
		return &model.SWC{
			Name:  name,
			Ports: []model.Port{{Name: port, Direction: dir, Interface: pi}},
			Runnables: []model.Runnable{{
				Name: "r", WCETNominal: sim.US(10),
				Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
			}},
		}
	}
	sensor := mk("Sensor", model.Provided, "out")
	ctrl := &model.SWC{
		Name: "Ctrl",
		Ports: []model.Port{
			{Name: "in", Direction: model.Required, Interface: pi},
			{Name: "cmd", Direction: model.Provided, Interface: pi},
		},
		Runnables: []model.Runnable{{
			Name: "r", WCETNominal: sim.US(10),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
		}},
	}
	act := mk("Act", model.Required, "in")
	return &model.System{
		Name:       "s",
		Interfaces: []*model.PortInterface{pi},
		Components: []*model.SWC{sensor, ctrl, act},
		ECUs:       []*model.ECU{{Name: "e1", Speed: 1}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
		},
		Constraints: []model.LatencyConstraint{{
			Name:   "e2e",
			Chain:  []model.PortRef2{{SWC: "Sensor", Port: "out"}, {SWC: "Ctrl", Port: "in"}, {SWC: "Ctrl", Port: "cmd"}, {SWC: "Act", Port: "in"}},
			Budget: sim.MS(10),
		}},
	}
}

func TestCheckSystem(t *testing.T) {
	sys := minimalSystem()
	contracts := map[string]*Contract{
		"Sensor": sensorContract(),
		"Ctrl":   ctrlContract(),
	}
	rep, err := CheckSystem(sys, contracts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 || rep.Skipped != 1 {
		t.Fatalf("checked %d skipped %d, want 1/1 (Act has no contract)", rep.Checked, rep.Skipped)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Confidence != 0.8 {
		t.Fatalf("confidence %v, want min 0.8", rep.Confidence)
	}
	// Break compatibility and re-check.
	contracts["Ctrl"].Assumes[0].Hi = 100
	rep, _ = CheckSystem(sys, contracts)
	if rep.OK() {
		t.Fatal("violation not reported")
	}
}

func TestChainLatency(t *testing.T) {
	sys := minimalSystem()
	contracts := map[string]*Contract{"Ctrl": ctrlContract()}
	lc := sys.Constraints[0]
	bound, err := ChainLatency(sys, contracts, lc, sim.MS(1))
	if err != nil {
		t.Fatal(err)
	}
	// Two communication hops (1ms each) + Ctrl internal 2ms = 4ms.
	if bound != sim.MS(4) {
		t.Fatalf("bound %v, want 4ms", bound)
	}
	ok, _, err := VerifyChain(sys, contracts, lc, sim.MS(1))
	if err != nil || !ok {
		t.Fatalf("chain should meet its 10ms budget: ok=%v err=%v", ok, err)
	}
	// Tighten the budget below the bound.
	lc.Budget = sim.MS(3)
	ok, _, _ = VerifyChain(sys, contracts, lc, sim.MS(1))
	if ok {
		t.Fatal("infeasible budget accepted")
	}
	// Remove the needed internal guarantee.
	contracts["Ctrl"].Guarantees = nil
	if _, err := ChainLatency(sys, contracts, lc, sim.MS(1)); err == nil {
		t.Fatal("missing latency guarantee not reported")
	}
}

func TestCheckUpdateRate(t *testing.T) {
	var rec trace.Recorder
	for i := 0; i < 5; i++ {
		rec.Emit(sim.Time(i)*sim.MS(10), trace.Activate, "s", int64(i), "")
	}
	if err := CheckUpdateRate(&rec, "s", sim.MS(9), sim.MS(11)); err != nil {
		t.Fatal(err)
	}
	rec.Emit(sim.MS(40)+sim.MS(25), trace.Activate, "s", 5, "") // 25ms gap
	if CheckUpdateRate(&rec, "s", sim.MS(9), sim.MS(11)) == nil {
		t.Fatal("rate violation not caught")
	}
	if CheckUpdateRate(&trace.Recorder{}, "ghost", 0, 1) == nil {
		t.Fatal("empty trace verifiable")
	}
}

func TestCheckValueRange(t *testing.T) {
	cond := Condition{Kind: ValueRange, Port: "out", Elem: "v", Lo: 0, Hi: 100}
	if err := CheckValueRange([]float64{0, 50, 100}, cond); err != nil {
		t.Fatal(err)
	}
	if CheckValueRange([]float64{50, 101}, cond) == nil {
		t.Fatal("out-of-range sample accepted")
	}
	if CheckValueRange(nil, Condition{Kind: Latency}) == nil {
		t.Fatal("wrong clause kind accepted")
	}
}

func TestConditionKindString(t *testing.T) {
	if ValueRange.String() != "value-range" || UpdateRate.String() != "update-rate" || Latency.String() != "latency" {
		t.Fatal("kind names")
	}
}

func TestExchangeRoundTrip(t *testing.T) {
	in := map[string]*Contract{
		"Sensor": sensorContract(),
		"Ctrl":   ctrlContract(),
	}
	var buf bytes.Buffer
	if err := Export(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("contracts = %d, want 2", len(out))
	}
	got := out["Sensor"]
	want := in["Sensor"]
	if len(got.Guarantees) != len(want.Guarantees) || got.Guarantees[0] != want.Guarantees[0] {
		t.Fatalf("guarantees lost: %+v", got.Guarantees)
	}
	if got.Vertical[0] != want.Vertical[0] {
		t.Fatalf("vertical assumptions lost: %+v", got.Vertical)
	}
	// Compatibility must survive the round trip.
	if err := Compatible(out["Sensor"], "out", out["Ctrl"], "in"); err != nil {
		t.Fatal(err)
	}
}

func TestImportRejectsBadCatalogue(t *testing.T) {
	for _, doc := range []string{
		`{"formatVersion":9,"contracts":[]}`,
		`{"formatVersion":1,"contracts":[{"component":"a","assumes":[{"kind":"psychic","port":"p","lo":0,"hi":1}]}]}`,
		`{"formatVersion":1,"contracts":[{"component":"a"},{"component":"a"}]}`,
		`{"formatVersion":1,"contracts":[{"component":"a","vertical":[{"Resource":"cpu","Budget":1,"Confidence":7}]}]}`,
		`{"formatVersion":1,"bogus":1,"contracts":[]}`,
	} {
		if _, err := Import(strings.NewReader(doc)); err == nil {
			t.Errorf("bad catalogue accepted: %s", doc[:40])
		}
	}
}

// With several invalid contracts, the reported error must not depend on
// map iteration order: the alphabetically first invalid contract wins.
func TestCheckSystemDeterministicError(t *testing.T) {
	sys := minimalSystem()
	bad := func(comp string) *Contract {
		return &Contract{
			Component: comp,
			Assumes:   []Condition{{Kind: ValueRange, Port: "in", Elem: "v", Lo: 10, Hi: 0}},
		}
	}
	contracts := map[string]*Contract{
		"Sensor": bad("Sensor"),
		"Ctrl":   bad("Ctrl"),
	}
	_, err := CheckSystem(sys, contracts)
	if err == nil {
		t.Fatal("invalid contracts accepted")
	}
	first := err.Error()
	if !strings.Contains(first, "Ctrl") {
		t.Fatalf("error %q does not name Ctrl, the first invalid contract in name order", first)
	}
	for i := 0; i < 10; i++ {
		_, err := CheckSystem(sys, contracts)
		if err == nil || err.Error() != first {
			t.Fatalf("run %d reported %v, first run reported %q", i, err, first)
		}
	}
}
