package contract

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Report is the outcome of system-level contract checking.
type Report struct {
	Checked    int      // connections with contracts on both sides
	Skipped    int      // connections lacking a contract on either side
	Violations []string // human-readable incompatibilities
	// Confidence is the weakest confidence across all participating
	// contracts' vertical assumptions.
	Confidence float64
}

// OK reports whether no violation was found.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// CheckSystem verifies every VFB connection of the system against the
// components' contracts: the provider's guarantees must imply the
// consumer's assumptions. Components without contracts are skipped (and
// counted), mirroring incremental adoption in a supplier landscape.
func CheckSystem(sys *model.System, contracts map[string]*Contract) (*Report, error) {
	rep := &Report{Confidence: 1}
	// Sorted names: with several invalid contracts the returned error must
	// not depend on map iteration order.
	names := make([]string, 0, len(contracts))
	for name := range contracts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := contracts[name]
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if conf := c.Confidence(); conf < rep.Confidence {
			rep.Confidence = conf
		}
	}
	for _, conn := range sys.Connectors {
		prov, okP := contracts[conn.FromSWC]
		cons, okC := contracts[conn.ToSWC]
		if !okP || !okC {
			rep.Skipped++
			continue
		}
		rep.Checked++
		if err := Compatible(prov, conn.FromPort, cons, conn.ToPort); err != nil {
			rep.Violations = append(rep.Violations, err.Error())
		}
	}
	return rep, nil
}

// ChainLatency derives an end-to-end latency bound for a constraint chain
// from component latency guarantees plus per-connector communication
// budgets (commBudget applies to every inter-component hop). It returns an
// error when a needed component guarantee is missing — the analysis is
// only as complete as the contracts.
func ChainLatency(sys *model.System, contracts map[string]*Contract,
	lc model.LatencyConstraint, commBudget sim.Duration) (sim.Duration, error) {
	var total sim.Duration
	for i := 0; i+1 < len(lc.Chain); i++ {
		a, b := lc.Chain[i], lc.Chain[i+1]
		if a.SWC == b.SWC {
			// Internal hop: needs a latency guarantee fromPort -> toPort.
			c, ok := contracts[a.SWC]
			if !ok {
				return 0, fmt.Errorf("contract: chain %s: no contract for %s", lc.Name, a.SWC)
			}
			budget := c.LatencyBudget(a.Port, b.Port)
			if budget <= 0 {
				return 0, fmt.Errorf("contract: chain %s: %s declares no latency guarantee %s->%s",
					lc.Name, a.SWC, a.Port, b.Port)
			}
			total += budget
			continue
		}
		// Communication hop.
		total += commBudget
	}
	return total, nil
}

// VerifyChain checks a latency constraint against the contract-derived
// bound: satisfied when bound <= budget.
func VerifyChain(sys *model.System, contracts map[string]*Contract,
	lc model.LatencyConstraint, commBudget sim.Duration) (bool, sim.Duration, error) {
	bound, err := ChainLatency(sys, contracts, lc, commBudget)
	if err != nil {
		return false, 0, err
	}
	return bound <= lc.Budget, bound, nil
}

// CheckUpdateRate validates an UpdateRate clause against a recorded
// simulation: every observed inter-activation gap of the source must lie
// within [lo, hi]. This is the runtime face of contract verification —
// interface compliance testing (§3).
func CheckUpdateRate(rec *trace.Recorder, source string, lo, hi sim.Duration) error {
	var prev sim.Time = -1
	n := 0
	for _, r := range rec.Records {
		if r.Source != source || r.Kind != trace.Activate {
			continue
		}
		if prev >= 0 {
			gap := r.At - prev
			if gap < lo || gap > hi {
				return fmt.Errorf("contract: %s inter-update gap %v outside [%v, %v]", source, gap, lo, hi)
			}
			n++
		}
		prev = r.At
	}
	if n == 0 {
		return fmt.Errorf("contract: %s produced fewer than two updates; rate unverifiable", source)
	}
	return nil
}

// CheckValueRange validates a ValueRange clause against observed samples.
func CheckValueRange(samples []float64, cond Condition) error {
	if cond.Kind != ValueRange {
		return fmt.Errorf("contract: CheckValueRange on %v clause", cond.Kind)
	}
	for i, v := range samples {
		if v < cond.Lo || v > cond.Hi {
			return fmt.Errorf("contract: sample %d = %g outside [%g, %g] on %s.%s", i, v, cond.Lo, cond.Hi, cond.Port, cond.Elem)
		}
	}
	return nil
}
