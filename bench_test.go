package autorte

// The benchmark harness: one benchmark per experiment E1–E10 (DESIGN.md's
// experiment index). Each runs the experiment at its published default
// configuration; the measured shapes are recorded in EXPERIMENTS.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// Reported ns/op is the wall-clock cost of regenerating the experiment's
// table; the experiment results themselves are deterministic in virtual
// time and independent of the host.

import (
	"io"
	"testing"

	"autorte/internal/experiments"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func benchTable(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty result table")
		}
		if i == 0 && testing.Verbose() {
			tab.Render(io.Discard)
		}
	}
}

func BenchmarkE1Interference(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E1Interference(experiments.DefaultE1())
	})
}

func BenchmarkE2IsolationOverhead(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E2IsolationOverhead(experiments.DefaultE2())
	})
}

func BenchmarkE3OverrunContainment(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E3OverrunContainment(experiments.DefaultE3())
	})
}

func BenchmarkE4BusComparison(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E4BusComparison(experiments.DefaultE4())
	})
}

func BenchmarkE5AnalysisVsSim(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E5AnalysisVsSim(experiments.DefaultE5())
	})
}

func BenchmarkE6Contracts(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E6Contracts(experiments.DefaultE6())
	})
}

func BenchmarkE7Consolidation(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E7Consolidation(experiments.DefaultE7())
	})
}

func BenchmarkE8NoC(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E8NoC(experiments.DefaultE8())
	})
}

func BenchmarkE9Extensibility(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E9Extensibility(experiments.DefaultE9())
	})
}

func BenchmarkE10ErrorHandling(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E10ErrorHandling(experiments.DefaultE10())
	})
}

// BenchmarkPlatformThroughput measures raw simulation speed: virtual
// events per wall second on the full generated vehicle. This is the
// substrate-cost figure behind every experiment above.
func BenchmarkPlatformThroughput(b *testing.B) {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	events := uint64(0)
	for i := 0; i < b.N; i++ {
		p, err := rte.Build(sys.Clone(), rte.Options{})
		if err != nil {
			b.Fatal(err)
		}
		p.Run(100 * sim.Millisecond)
		events += p.K.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkExchangeRoundTrip measures the template import/export path.
func BenchmarkExchangeRoundTrip(b *testing.B) {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			done <- model.Export(pw, sys)
			pw.Close()
		}()
		if _, err := model.Import(pr); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}
