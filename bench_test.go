package autorte

// The benchmark harness: one benchmark per experiment E1–E13 (DESIGN.md's
// experiment index). Each runs the experiment at its published default
// configuration; the measured shapes are recorded in EXPERIMENTS.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// Reported ns/op is the wall-clock cost of regenerating the experiment's
// table; the experiment results themselves are deterministic in virtual
// time and independent of the host.

import (
	"io"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"autorte/internal/core"
	"autorte/internal/deploy"
	"autorte/internal/experiments"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

// benchSettle levels the heap before a measured on/off comparison: the
// garbage left by the previous sub-benchmark otherwise bills its GC debt
// to whichever variant runs next, which a tight ratio gate (benchguard
// -flightratio) would misread as real overhead.
func benchSettle(b *testing.B) {
	b.Helper()
	runtime.GC()
	b.ResetTimer()
}

func benchTable(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty result table")
		}
		if i == 0 && testing.Verbose() {
			tab.Render(io.Discard)
		}
	}
}

func BenchmarkE1Interference(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E1Interference(experiments.DefaultE1())
	})
}

func BenchmarkE2IsolationOverhead(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E2IsolationOverhead(experiments.DefaultE2())
	})
}

func BenchmarkE3OverrunContainment(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E3OverrunContainment(experiments.DefaultE3())
	})
}

func BenchmarkE4BusComparison(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E4BusComparison(experiments.DefaultE4())
	})
}

func BenchmarkE5AnalysisVsSim(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E5AnalysisVsSim(experiments.DefaultE5())
	})
}

func BenchmarkE6Contracts(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E6Contracts(experiments.DefaultE6())
	})
}

func BenchmarkE7Consolidation(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E7Consolidation(experiments.DefaultE7())
	})
}

func BenchmarkE8NoC(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E8NoC(experiments.DefaultE8())
	})
}

func BenchmarkE9Extensibility(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E9Extensibility(experiments.DefaultE9())
	})
}

func BenchmarkE10ErrorHandling(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E10ErrorHandling(experiments.DefaultE10())
	})
}

func BenchmarkE11FaultCampaign(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E11FaultCampaign(experiments.DefaultE11())
	})
}

func BenchmarkE12DetectionCoverage(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E12DetectionCoverage(experiments.DefaultE12())
	})
}

// BenchmarkE13Availability measures the fail-operational deployment
// study — every candidate deployment simulated under the full ECU-kill
// and bus-burst scenario matrix — as a paired par/seq comparison: the
// GOMAXPROCS campaign against the single-worker campaign, interleaved
// within each iteration (same pairing rationale as the flight-recorder
// benchmarks). benchguard gates the reported "par/seq-ratio": on a
// multicore host the fan-out must win outright, and even on a one-CPU
// host — where both arms degenerate to the same single worker — the
// parallel dispatch must stay within the overhead budget rather than
// becoming a tax.
func BenchmarkE13Availability(b *testing.B) {
	campaign := func(workers int) func() {
		cfg := experiments.DefaultE13()
		cfg.Workers = workers
		return func() {
			tab, err := experiments.E13Availability(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatal("empty result table")
			}
		}
	}
	benchPairedMetric(b, "par/seq-ratio", campaign(0), campaign(1))
}

// BenchmarkE14Observer measures the multi-failure detection study — the
// single- and replicated-observer deployments under the full ECU-kill
// campaign with quorum voting on every scenario — under the same paired
// par/seq discipline as E13.
func BenchmarkE14Observer(b *testing.B) {
	campaign := func(workers int) func() {
		cfg := experiments.DefaultE14()
		cfg.Workers = workers
		return func() {
			tab, err := experiments.E14Observer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatal("empty result table")
			}
		}
	}
	benchPairedMetric(b, "par/seq-ratio", campaign(0), campaign(1))
}

// BenchmarkPlatformThroughput measures raw simulation speed: virtual
// events per wall second on the full generated vehicle. This is the
// substrate-cost figure behind every experiment above.
func BenchmarkPlatformThroughput(b *testing.B) {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	events := uint64(0)
	for i := 0; i < b.N; i++ {
		p, err := rte.Build(sys.Clone(), rte.Options{})
		if err != nil {
			b.Fatal(err)
		}
		p.Run(100 * sim.Millisecond)
		events += p.K.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// benchPairedRatio times recorder-on and recorder-off alternately within
// one benchmark run — flipping the order every iteration — and reports
// the cumulative on/off ns ratio as the "on/off-ratio" metric benchguard
// gates. Pairing is what makes a 5% budget measurable: each on sample
// runs milliseconds from its off partner, so machine-level noise
// episodes (shared-runner co-tenancy, frequency shifts) hit both sides
// and cancel, where independently sampled on/off minima would need
// hundreds of repeats to converge that tightly.
func benchPairedRatio(b *testing.B, on, off func()) {
	b.Helper()
	benchPairedMetric(b, "on/off-ratio", on, off)
}

// benchPairedMetric is the general paired comparison: cumulative
// on-ns / off-ns reported under the given metric name.
func benchPairedMetric(b *testing.B, metric string, on, off func()) {
	b.Helper()
	benchSettle(b)
	var onNs, offNs int64
	timed := func(f func()) int64 {
		t0 := time.Now()
		f()
		return time.Since(t0).Nanoseconds()
	}
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			onNs += timed(on)
			offNs += timed(off)
		} else {
			offNs += timed(off)
			onNs += timed(on)
		}
	}
	if offNs > 0 {
		b.ReportMetric(float64(onNs)/float64(offNs), metric)
	}
}

// BenchmarkPlatformFlight pins the cost of the always-on flight
// recorder on the raw simulation path: the full generated vehicle with
// the recorder plus a 10ms virtual-time sampler armed (the default
// observability posture) against the recorder disabled. benchguard
// holds the reported on/off-ratio to the observability budget.
func BenchmarkPlatformFlight(b *testing.B) {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	run := func(opts rte.Options, sampled bool) {
		p, err := rte.Build(sys.Clone(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if sampled {
			p.EnableSampling(10*sim.Millisecond, nil)
		}
		p.Run(100 * sim.Millisecond)
	}
	benchPairedRatio(b,
		func() { run(rte.Options{}, true) },
		func() { run(rte.Options{DisableFlight: true}, false) })
}

// BenchmarkE11Flight is the same on/off comparison on the
// fault-injection campaign: every scenario platform carries the
// recorder, so the campaign is the worst case for recorder overhead
// outside microbenchmarks.
func BenchmarkE11Flight(b *testing.B) {
	campaign := func(disable bool) func() {
		cfg := experiments.DefaultE11()
		cfg.DisableFlight = disable
		return func() {
			tab, err := experiments.E11FaultCampaign(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatal("empty result table")
			}
		}
	}
	benchPairedRatio(b, campaign(false), campaign(true))
}

// ---------------------------------------------------------------------
// Parallel verification & DSE pipeline benchmarks. Three demo-vehicle
// sizes; for each, `seq` is the pre-pipeline behavior (one worker, no
// caches, cold per candidate) and `par` the full pipeline (GOMAXPROCS
// workers, shared memoized analyses). Reports are byte-identical between
// the two (TestVerifyParallelMatchesSequential); the numbers go into
// EXPERIMENTS.md.

func vehicleSpecSized(scale int) workload.VehicleSpec {
	dases := workload.DefaultDASes()
	for i := range dases {
		dases[i].Chains *= scale
	}
	bitRate := int64(500_000 * scale)
	if bitRate > 1_000_000 {
		bitRate = 1_000_000 // classic CAN tops out at 1 Mbit/s
	}
	return workload.VehicleSpec{
		DASes: dases,
		// Every generated chain carries a verified end-to-end latency
		// constraint, so the chain count in the size label is the number of
		// chains Verify actually analyzes. The backbone bit rate scales with
		// the signal population to keep the frame set schedulable.
		ChainConstraints: true,
		BusBitRate:       bitRate,
	}
}

var verifySizes = []struct {
	name  string
	scale int
}{
	{"small-13chains", 1},
	{"medium-26chains", 2},
	{"large-52chains", 4},
}

func demoVehicleScaled(b *testing.B, scale int) *model.System {
	b.Helper()
	sys, err := workload.GenerateVehicle(vehicleSpecSized(scale), sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkVerify measures one full static verification of the demo
// vehicle. seq/par differ only in worker count and caching; on a
// multicore host the fan-out over ECUs, buses and chains is the win, on
// one core the two are equivalent.
func BenchmarkVerify(b *testing.B) {
	for _, size := range verifySizes {
		sys := demoVehicleScaled(b, size.scale)
		b.Run(size.name+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := &core.Pipeline{Workers: 1}
				if _, err := p.Verify(sys, nil, rte.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(size.name+"/par", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.NewPipeline(0)
				if _, err := p.Verify(sys, nil, rte.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyFlight is the recorder on/off comparison on the
// pipeline's hottest path: the large parallel verify, which builds a
// simulated platform (now carrying the flight recorder by default) per
// run.
func BenchmarkVerifyFlight(b *testing.B) {
	sys := demoVehicleScaled(b, 4)
	verify := func(opts rte.Options) func() {
		return func() {
			p := core.NewPipeline(0)
			if _, err := p.Verify(sys, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	benchPairedRatio(b, verify(rte.Options{}), verify(rte.Options{DisableFlight: true}))
}

// dseCandidates builds a deterministic stream of single-move candidate
// systems around the consolidated demo vehicle — the access pattern of
// the deployment search, where successive candidates share most ECU task
// sets.
func dseCandidates(b *testing.B, sys *model.System, n int) (*model.System, []*model.System) {
	b.Helper()
	consolidated, err := deploy.Greedy(sys, deploy.Constraints{})
	if err != nil {
		b.Fatal(err)
	}
	var comps, ecus []string
	for _, c := range consolidated.Components {
		comps = append(comps, c.Name)
	}
	for _, e := range consolidated.ECUs {
		ecus = append(ecus, e.Name)
	}
	sort.Strings(comps)
	sort.Strings(ecus)
	out := make([]*model.System, 0, n)
	for i := 0; len(out) < n; i++ {
		cand := consolidated.Clone()
		comp := comps[i%len(comps)]
		ecu := ecus[(i*7+3)%len(ecus)]
		if cand.Mapping[comp] == ecu {
			continue
		}
		cand.Mapping[comp] = ecu
		out = append(out, cand)
	}
	return consolidated, out
}

// BenchmarkVerifyDSESweep measures a full Verify+DSE pass: score a
// 32-candidate sweep under RequireSchedulable, then statically verify the
// winner. seq is the pre-pipeline workflow — every candidate evaluated
// through the unbound, uncached evaluator, the winner verified on one
// worker with cold analyses. par is the pipeline workflow — candidates
// scored through a bound evaluator sharing the memoized response-time
// cache, the winner verified through a shared parallel pipeline. Both
// pick the same winner and produce byte-identical reports
// (TestBoundEvaluateMatchesUnbound, TestVerifyParallelMatchesSequential).
func BenchmarkVerifyDSESweep(b *testing.B) {
	const candidates = 32
	cons := deploy.Constraints{RequireSchedulable: true}
	obj := deploy.DefaultObjective()
	for _, size := range verifySizes {
		sys := demoVehicleScaled(b, size.scale)
		_, cands := dseCandidates(b, sys, candidates)
		b.Run(size.name+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				best, bestCost := 0, math.Inf(1)
				for j, cand := range cands {
					if cost := deploy.Evaluate(cand, cons).Cost(obj); cost < bestCost {
						best, bestCost = j, cost
					}
				}
				p := &core.Pipeline{Workers: 1}
				if _, err := p.Verify(cands[best], nil, rte.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(size.name+"/par", func(b *testing.B) {
			ev := deploy.NewEvaluator(cons)
			bound, err := ev.Bind(cands[0])
			if err != nil {
				b.Fatal(err)
			}
			p := core.NewPipeline(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				best, bestCost := 0, math.Inf(1)
				for j, cand := range cands {
					if cost := bound.Evaluate(cand.Mapping).Cost(obj); cost < bestCost {
						best, bestCost = j, cost
					}
				}
				if _, err := p.Verify(cands[best], nil, rte.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyDSESweepInc is the sweep with the delta layers engaged:
// candidates scored through the prepared (per-move) evaluator, the winner
// re-verified through core.Incremental — only the ECUs, buses and chains
// the winning move touches are re-analyzed, against the par variant's full
// (cached) re-verification. Each iteration advances the incumbent to the
// winner and back, so every pass exercises two real single-move deltas.
func BenchmarkVerifyDSESweepInc(b *testing.B) {
	const candidates = 32
	cons := deploy.Constraints{RequireSchedulable: true}
	obj := deploy.DefaultObjective()
	for _, size := range verifySizes {
		sys := demoVehicleScaled(b, size.scale)
		base, cands := dseCandidates(b, sys, candidates)
		// The single move behind each candidate, diffed once up front.
		type move struct{ comp, ecu string }
		moves := make([]move, len(cands))
		for j, cand := range cands {
			for c, e := range cand.Mapping {
				if base.Mapping[c] != e {
					moves[j] = move{c, e}
					break
				}
			}
		}
		b.Run(size.name+"/inc", func(b *testing.B) {
			ev := deploy.NewEvaluator(cons)
			bound, err := ev.Bind(base)
			if err != nil {
				b.Fatal(err)
			}
			prep, err := bound.Prepare(base.Mapping)
			if err != nil {
				b.Fatal(err)
			}
			p := core.NewPipeline(0)
			inc, err := core.NewIncremental(p, base.Clone(), nil, rte.Options{})
			if err != nil {
				b.Fatal(err)
			}
			baseMapping := map[string]string{}
			for c, e := range base.Mapping {
				baseMapping[c] = e
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				best, bestCost := 0, math.Inf(1)
				for j := range cands {
					if cost := prep.EvaluateMove(moves[j].comp, moves[j].ecu).Cost(obj); cost < bestCost {
						best, bestCost = j, cost
					}
				}
				if _, err := inc.Reverify(cands[best].Mapping); err != nil {
					b.Fatal(err)
				}
				// Return to the incumbent so the next pass re-verifies the
				// same single-move delta instead of a no-op.
				if _, err := inc.Reverify(baseMapping); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDSEDescend measures the schedulability-constrained descent
// search, refining the Greedy consolidation (dense task sets, where RTA
// dominates candidate evaluation): seq runs single-worker with an
// uncached evaluator (every candidate re-runs RTA on the changed ECUs),
// par shares the response-time cache across all moves and iterations.
func BenchmarkDSEDescend(b *testing.B) {
	sys, _ := dseCandidates(b, demoVehicleScaled(b, 2), 1)
	cons := deploy.Constraints{RequireSchedulable: true}
	obj := deploy.DefaultObjective()
	b.Run("seq-uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := &deploy.Evaluator{Cons: cons}
			if _, err := deploy.DescendWith(ev, sys, obj, 1, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := deploy.Descend(sys, cons, obj, 0, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDSEAnnealParallel measures the restart-based annealing search
// (4 chains, shared RTA cache) against the equivalent sequential chain
// loop without a shared cache.
func BenchmarkDSEAnnealParallel(b *testing.B) {
	sys := demoVehicleScaled(b, 1)
	cons := deploy.Constraints{}
	obj := deploy.DefaultObjective()
	const iters, restarts = 300, 4
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < restarts; r++ {
				seed := uint64(99) ^ (uint64(r+1) * 0x9e3779b97f4a7c15)
				if _, err := deploy.Anneal(sys, cons, obj, seed, iters); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := deploy.AnnealParallel(sys, cons, obj, 99, iters, restarts, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExchangeRoundTrip measures the template import/export path.
func BenchmarkExchangeRoundTrip(b *testing.B) {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			done <- model.Export(pw, sys)
			pw.Close()
		}()
		if _, err := model.Import(pr); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}
