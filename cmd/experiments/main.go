// Command experiments runs the full reproduction suite E1–E11 from
// DESIGN.md and prints one result table per experiment (see
// EXPERIMENTS.md for the interpretation of each).
//
// Usage:
//
//	experiments [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"

	"autorte/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E10)")
	flag.Parse()
	if *only == "" {
		if err := experiments.All(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	runs := map[string]func() (*experiments.Table, error){
		"E1":  func() (*experiments.Table, error) { return experiments.E1Interference(experiments.DefaultE1()) },
		"E2":  func() (*experiments.Table, error) { return experiments.E2IsolationOverhead(experiments.DefaultE2()) },
		"E3":  func() (*experiments.Table, error) { return experiments.E3OverrunContainment(experiments.DefaultE3()) },
		"E4":  func() (*experiments.Table, error) { return experiments.E4BusComparison(experiments.DefaultE4()) },
		"E5":  func() (*experiments.Table, error) { return experiments.E5AnalysisVsSim(experiments.DefaultE5()) },
		"E6":  func() (*experiments.Table, error) { return experiments.E6Contracts(experiments.DefaultE6()) },
		"E7":  func() (*experiments.Table, error) { return experiments.E7Consolidation(experiments.DefaultE7()) },
		"E8":  func() (*experiments.Table, error) { return experiments.E8NoC(experiments.DefaultE8()) },
		"E9":  func() (*experiments.Table, error) { return experiments.E9Extensibility(experiments.DefaultE9()) },
		"E10": func() (*experiments.Table, error) { return experiments.E10ErrorHandling(experiments.DefaultE10()) },
	}
	run, ok := runs[*only]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want E1..E10)\n", *only)
		os.Exit(2)
	}
	tab, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	tab.Render(os.Stdout)
}
