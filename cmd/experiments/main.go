// Command experiments runs the full reproduction suite E1–E11 from
// DESIGN.md and prints one result table per experiment (see
// EXPERIMENTS.md for the interpretation of each).
//
// Usage:
//
//	experiments [-only E4]
//	experiments -bundle chaos.bundle
//
// -bundle runs the E11 forced safe-stop scenario and writes its terminal
// diagnostic bundle to the given path (inspect with autodiag) — the
// artifact CI attaches when the chaos suite fails. With -bundle and no
// -only, only the bundle is produced.
package main

import (
	"flag"
	"fmt"
	"os"

	"autorte/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E12series)")
	bundle := flag.String("bundle", "", "write the E11 forced safe-stop diagnostic bundle to this path")
	flag.Parse()
	if *bundle != "" {
		if _, err := experiments.E11SafeStopBundle(experiments.DefaultE11(), *bundle); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", *bundle)
		if *only == "" {
			return
		}
	}
	if *only == "" {
		if err := experiments.All(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	runs := map[string]func() (*experiments.Table, error){
		"E1":  func() (*experiments.Table, error) { return experiments.E1Interference(experiments.DefaultE1()) },
		"E2":  func() (*experiments.Table, error) { return experiments.E2IsolationOverhead(experiments.DefaultE2()) },
		"E3":  func() (*experiments.Table, error) { return experiments.E3OverrunContainment(experiments.DefaultE3()) },
		"E4":  func() (*experiments.Table, error) { return experiments.E4BusComparison(experiments.DefaultE4()) },
		"E5":  func() (*experiments.Table, error) { return experiments.E5AnalysisVsSim(experiments.DefaultE5()) },
		"E6":  func() (*experiments.Table, error) { return experiments.E6Contracts(experiments.DefaultE6()) },
		"E7":  func() (*experiments.Table, error) { return experiments.E7Consolidation(experiments.DefaultE7()) },
		"E8":  func() (*experiments.Table, error) { return experiments.E8NoC(experiments.DefaultE8()) },
		"E9":  func() (*experiments.Table, error) { return experiments.E9Extensibility(experiments.DefaultE9()) },
		"E10": func() (*experiments.Table, error) { return experiments.E10ErrorHandling(experiments.DefaultE10()) },
		"E11": func() (*experiments.Table, error) { return experiments.E11FaultCampaign(experiments.DefaultE11()) },
		"E11limp": func() (*experiments.Table, error) {
			return experiments.E11LimpHome(experiments.DefaultE11())
		},
		"E11series": func() (*experiments.Table, error) {
			return experiments.E11RecoverySeries(experiments.DefaultE11())
		},
		"E11timeline": func() (*experiments.Table, error) {
			return experiments.E11EscalationTimeline(experiments.DefaultE11())
		},
		"E12": func() (*experiments.Table, error) {
			return experiments.E12DetectionCoverage(experiments.DefaultE12())
		},
		"E12overhead": func() (*experiments.Table, error) {
			return experiments.E12Overhead(experiments.DefaultE12())
		},
		"E12recovery": func() (*experiments.Table, error) {
			return experiments.E12Recovery(experiments.DefaultE12())
		},
		"E12series": func() (*experiments.Table, error) {
			return experiments.E12RecoverySeries(experiments.DefaultE12())
		},
	}
	run, ok := runs[*only]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want E1..E12series)\n", *only)
		os.Exit(2)
	}
	tab, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	tab.Render(os.Stdout)
}
