package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"autorte/internal/analysis/directive"
)

// runSummary digests a `go vet -json -vettool=autovet` transcript into
// a per-analyzer table of findings and suppressions, so make lint and
// the CI artifact show at a glance which invariants fired and how many
// sites carry a justified exemption.
//
// Usage: autovet summary <autovet.json> [source-dir]
func runSummary(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: autovet summary <autovet.json> [source-dir]")
	}
	findings, err := countFindings(args[0])
	if err != nil {
		return err
	}
	dir := "."
	if len(args) > 1 {
		dir = args[1]
	}
	allows, markers, err := countDirectives(dir)
	if err != nil {
		return err
	}

	names := append([]string(nil), directive.KnownAnalyzers...)
	for n := range findings {
		if !contains(names, n) {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-14s %8s %7s %8s\n", "analyzer", "findings", "allows", "markers")
	var tf, ta, tm int
	for _, n := range names {
		fmt.Fprintf(w, "%-14s %8d %7d %8d\n", n, findings[n], allows[n], markers[n])
		tf += findings[n]
		ta += allows[n]
		tm += markers[n]
	}
	fmt.Fprintf(w, "%-14s %8d %7d %8d\n", "total", tf, ta, tm)
	return nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// countFindings parses the go vet -json stream: "# package" comment
// lines interleaved with JSON objects mapping package ID -> analyzer ->
// diagnostics.
func countFindings(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var clean []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		clean = append(clean, line)
	}
	counts := map[string]int{}
	dec := json.NewDecoder(strings.NewReader(strings.Join(clean, "\n")))
	for dec.More() {
		var tree map[string]map[string][]json.RawMessage
		if err := dec.Decode(&tree); err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		for _, byAnalyzer := range tree {
			for analyzer, diags := range byAnalyzer {
				counts[analyzer] += len(diags)
			}
		}
	}
	return counts, nil
}

var (
	allowRE  = regexp.MustCompile(`^//autovet:allow\s+([a-z0-9]+)`)
	markerRE = regexp.MustCompile(`^//autovet:(bounded|nilsafe)\b`)
)

// countDirectives counts //autovet:allow suppressions per analyzer and
// //autovet:bounded|nilsafe markers (credited to their analyzer) in the
// non-vendored, non-testdata source tree. Files are parsed so only real
// comment tokens count — mentions of the directive syntax inside string
// literals (diagnostic templates) or prose comments do not.
func countDirectives(dir string) (allows, markers map[string]int, err error) {
	allows, markers = map[string]int{}, map[string]int{}
	fset := token.NewFileSet()
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git", "bin":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				if m := allowRE.FindStringSubmatch(c.Text); m != nil {
					allows[m[1]]++
				}
				if m := markerRE.FindStringSubmatch(c.Text); m != nil {
					markers[m[1]]++
				}
			}
		}
		return nil
	})
	return allows, markers, err
}
