// Autovet is the platform's static-analysis gate: a vet tool bundling
// the autorte/internal/analysis suite, which turns the repo's
// reliability invariants — virtual-time determinism, nil-safe
// observability, bounded concurrency, exhaustive enum handling — into
// machine-checked contracts.
//
// It speaks the unitchecker protocol, so the go command drives it (and
// caches its results) exactly like the standard vet suite:
//
//	go build -o bin/autovet ./cmd/autovet
//	go vet -vettool=$(pwd)/bin/autovet ./...
//
// or just "make lint" (included in "make check"). See the package
// documentation of autorte/internal/analysis for the analyzer list and
// the //autovet:allow directive syntax.
package main

import (
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"autorte/internal/analysis/baregoroutine"
	"autorte/internal/analysis/bounded"
	"autorte/internal/analysis/detrange"
	"autorte/internal/analysis/directive"
	"autorte/internal/analysis/e2eflow"
	"autorte/internal/analysis/errreport"
	"autorte/internal/analysis/kindswitch"
	"autorte/internal/analysis/lockorder"
	"autorte/internal/analysis/nilsafe"
	"autorte/internal/analysis/walltime"
)

func main() {
	// "autovet summary <autovet.json> [dir]" is a reporting subcommand
	// layered next to the unitchecker protocol: it digests a run's JSON
	// diagnostics into per-analyzer finding and allow counts for make
	// lint and the CI artifact.
	if len(os.Args) > 1 && os.Args[1] == "summary" {
		if err := runSummary(os.Args[2:]); err != nil {
			os.Stderr.WriteString("autovet summary: " + err.Error() + "\n")
			os.Exit(1)
		}
		return
	}
	unitchecker.Main(
		walltime.Analyzer,
		nilsafe.Analyzer,
		baregoroutine.Analyzer,
		kindswitch.Analyzer,
		detrange.Analyzer,
		errreport.Analyzer,
		bounded.Analyzer,
		e2eflow.Analyzer,
		lockorder.Analyzer,
		directive.Analyzer,
	)
}
