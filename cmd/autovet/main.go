// Autovet is the platform's static-analysis gate: a vet tool bundling
// the autorte/internal/analysis suite, which turns the repo's
// reliability invariants — virtual-time determinism, nil-safe
// observability, bounded concurrency, exhaustive enum handling — into
// machine-checked contracts.
//
// It speaks the unitchecker protocol, so the go command drives it (and
// caches its results) exactly like the standard vet suite:
//
//	go build -o bin/autovet ./cmd/autovet
//	go vet -vettool=$(pwd)/bin/autovet ./...
//
// or just "make lint" (included in "make check"). See the package
// documentation of autorte/internal/analysis for the analyzer list and
// the //autovet:allow directive syntax.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"autorte/internal/analysis/baregoroutine"
	"autorte/internal/analysis/directive"
	"autorte/internal/analysis/kindswitch"
	"autorte/internal/analysis/nilsafe"
	"autorte/internal/analysis/walltime"
)

func main() {
	unitchecker.Main(
		walltime.Analyzer,
		nilsafe.Analyzer,
		baregoroutine.Analyzer,
		kindswitch.Analyzer,
		directive.Analyzer,
	)
}
