// Command autodiag inspects the diagnostic bundles the platform's
// flight recorder cuts on health escalations, safe-stop or on demand,
// and can serve a bundle over HTTP with the platform's observability
// endpoints (Prometheus scrape, DLT tail).
//
// Usage:
//
//	autodiag summary  bundle                      one-screen overview
//	autodiag dlt      [-min warn] [-grep re] [-app A] [-ctx C] [-json] bundle
//	autodiag spans    [-kind k] bundle            span/instant lanes
//	autodiag metrics  [-grep re] [-json] bundle   metric snapshot
//	autodiag series   [-grep re] bundle           sampled virtual-time series
//	autodiag diff     before after                metric delta between bundles
//	autodiag chrome   [-o trace.json] bundle      chrome://tracing export
//	autodiag serve    [-addr :9077] [-every 100ms] [-loop] bundle
//
// serve exposes /metrics (Prometheus text 0.0.4), /metrics.json, /dlt
// (text, ?format=json, ?follow=1 live tail), /bundle (gzip download)
// and /summary. The bundle's DLT records are replayed into the live
// tail one every -every, so followers see the black box play back.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"time"

	"autorte/internal/obs"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	if err := run(os.Stdout, cmd, args); err != nil {
		fmt.Fprintln(os.Stderr, "autodiag:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: autodiag <command> [flags] bundle...

commands:
  summary  bundle                     one-screen overview of a bundle
  dlt      [-min L] [-grep re] [-app A] [-ctx C] [-json] bundle
  spans    [-kind k] bundle           span/instant lanes from the flight recorder
  metrics  [-grep re] [-json] bundle  metric snapshot
  series   [-grep re] bundle          sampled virtual-time series
  diff     before after               metric delta between two bundles
  chrome   [-o file] bundle           export as chrome://tracing JSON
  serve    [-addr :9077] [-every d] [-loop] bundle
`)
}

func run(w io.Writer, cmd string, args []string) error {
	switch cmd {
	case "summary":
		return withBundle(cmd, args, nil, func(b *obs.Bundle) error { return b.WriteSummary(w) })
	case "dlt":
		return cmdDLT(w, args)
	case "spans":
		return cmdSpans(w, args)
	case "metrics":
		return cmdMetrics(w, args)
	case "series":
		return cmdSeries(w, args)
	case "diff":
		return cmdDiff(w, args)
	case "chrome":
		return cmdChrome(w, args)
	case "serve":
		return cmdServe(w, args)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// withBundle parses flags (when fs is non-nil), loads the single
// positional bundle argument and applies fn.
func withBundle(cmd string, args []string, fs *flag.FlagSet, fn func(*obs.Bundle) error) error {
	if fs == nil {
		fs = flag.NewFlagSet(cmd, flag.ContinueOnError)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s: want exactly one bundle path, got %d", cmd, fs.NArg())
	}
	b, err := obs.ReadBundleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	return fn(b)
}

func cmdDLT(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dlt", flag.ContinueOnError)
	minName := fs.String("min", "verbose", "minimum level (verbose..fatal)")
	grep := fs.String("grep", "", "only records whose message matches this regexp")
	app := fs.String("app", "", "only records of this DLT application ID")
	ctx := fs.String("ctx", "", "only records of this DLT context ID")
	asJSON := fs.Bool("json", false, "emit one JSON object per record")
	return withBundle("dlt", args, fs, func(b *obs.Bundle) error {
		minLevel, ok := obs.ParseLevel(*minName)
		if !ok {
			return fmt.Errorf("dlt: unknown level %q", *minName)
		}
		var re *regexp.Regexp
		if *grep != "" {
			var err error
			if re, err = regexp.Compile(*grep); err != nil {
				return err
			}
		}
		shown := 0
		for _, rec := range b.Flight.DLT {
			if rec.Level < minLevel ||
				(*app != "" && rec.App != *app) ||
				(*ctx != "" && rec.Ctx != *ctx) ||
				(re != nil && !re.MatchString(rec.Msg)) {
				continue
			}
			shown++
			if *asJSON {
				repeat := ""
				if rec.Repeat > 1 {
					repeat = fmt.Sprintf(`,"repeat":%d`, rec.Repeat)
				}
				fmt.Fprintf(w, `{"at_ns":%d,"level":%q,"app":%q,"ctx":%q,"msg":%q%s}`+"\n",
					rec.At, rec.Level.String(), rec.App, rec.Ctx, rec.Msg, repeat)
			} else {
				msg := rec.Msg
				if rec.Repeat > 1 {
					msg = fmt.Sprintf("%s ×%d", msg, rec.Repeat)
				}
				fmt.Fprintf(w, "%12.6fs %-7s %-4s %-4s %s\n",
					float64(rec.At)/1e9, rec.Level, rec.App, rec.Ctx, msg)
			}
		}
		if !*asJSON {
			fmt.Fprintf(w, "-- %d/%d records shown (%d total emitted, ring cap kept %d)\n",
				shown, len(b.Flight.DLT), b.Flight.DLTTotal, len(b.Flight.DLT))
		}
		return nil
	})
}

func cmdSpans(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	kind := fs.String("kind", "", "only this span kind/lane")
	return withBundle("spans", args, fs, func(b *obs.Bundle) error {
		lanes := map[string][]obs.SpanEvent{}
		var order []string
		for _, sp := range b.Flight.Spans {
			lane := sp.Kind
			if lane == "" {
				lane = sp.Name
			}
			if *kind != "" && lane != *kind {
				continue
			}
			if _, seen := lanes[lane]; !seen {
				order = append(order, lane)
			}
			lanes[lane] = append(lanes[lane], sp)
		}
		sort.Strings(order)
		for _, lane := range order {
			fmt.Fprintf(w, "%s (%d events)\n", lane, len(lanes[lane]))
			for _, sp := range lanes[lane] {
				state := ""
				if sp.Open {
					state = " [open]"
				}
				if sp.Count > 1 {
					state += fmt.Sprintf(" ×%d", sp.Count)
				}
				if sp.End > sp.Start {
					fmt.Fprintf(w, "  %12.6fs +%8.3fms %s%s %s\n", float64(sp.Start)/1e9,
						float64(sp.End-sp.Start)/1e6, sp.Name, state, sp.Detail)
				} else {
					fmt.Fprintf(w, "  %12.6fs %s%s %s\n", float64(sp.Start)/1e9, sp.Name, state, sp.Detail)
				}
			}
		}
		fmt.Fprintf(w, "-- %d span events retained of %d recorded\n",
			len(b.Flight.Spans), b.Flight.SpanTotal)
		return nil
	})
}

func cmdMetrics(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	grep := fs.String("grep", "", "only series whose name matches this regexp")
	asJSON := fs.Bool("json", false, "emit the snapshot as JSON")
	return withBundle("metrics", args, fs, func(b *obs.Bundle) error {
		samples := b.Metrics
		if *grep != "" {
			re, err := regexp.Compile(*grep)
			if err != nil {
				return err
			}
			var kept []obs.Sample
			for _, s := range samples {
				if re.MatchString(s.Name) {
					kept = append(kept, s)
				}
			}
			samples = kept
		}
		if *asJSON {
			return obs.WriteJSON(w, samples)
		}
		return obs.WritePrometheus(w, samples)
	})
}

func cmdSeries(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("series", flag.ContinueOnError)
	grep := fs.String("grep", "", "only series whose name matches this regexp")
	return withBundle("series", args, fs, func(b *obs.Bundle) error {
		var re *regexp.Regexp
		if *grep != "" {
			var err error
			if re, err = regexp.Compile(*grep); err != nil {
				return err
			}
		}
		for _, s := range b.Series {
			if re != nil && !re.MatchString(s.Name) {
				continue
			}
			fmt.Fprintf(w, "%s (%s, %d points)\n", s.Key(), s.Kind, len(s.Points))
			for _, pt := range s.Points {
				fmt.Fprintf(w, "  %12.6fs %g\n", float64(pt.At)/1e9, pt.Value)
			}
		}
		return nil
	})
}

func cmdDiff(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two bundle paths, got %d", fs.NArg())
	}
	before, err := obs.ReadBundleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	after, err := obs.ReadBundleFile(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := obs.DiffSamples(before.Metrics, after.Metrics)
	if len(diffs) == 0 {
		fmt.Fprintln(w, "no metric changed between the bundles")
		return nil
	}
	dt := float64(after.At-before.At) / 1e9
	fmt.Fprintf(w, "%d series changed over %.6fs of virtual time:\n", len(diffs), dt)
	for _, d := range diffs {
		fmt.Fprintf(w, "  %-50s %14g -> %-14g (%+g)\n",
			d.Name+labelText(d.Labels), d.Before, d.After, d.Delta)
	}
	return nil
}

func labelText(labels []obs.Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l.Key + "=" + l.Value
	}
	return out + "}"
}

func cmdChrome(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	return withBundle("chrome", args, fs, func(b *obs.Bundle) error {
		dst := w
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		cs := obs.NewChromeStream(dst)
		for _, ev := range b.ChromeEvents() {
			if err := cs.Add(ev); err != nil {
				return err
			}
		}
		return cs.Close()
	})
}

func cmdServe(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":9077", "listen address")
	every := fs.Duration("every", 100*time.Millisecond, "wall-clock pace of the DLT replay")
	loop := fs.Bool("loop", false, "restart the DLT replay when it runs out")
	return withBundle("serve", args, fs, func(b *obs.Bundle) error {
		h, replay := newServeHandler(b)
		//autovet:allow baregoroutine offline tool: replays the bundle's DLT in wall time for live tails
		go replay(*every, *loop)
		fmt.Fprintf(w, "autodiag: serving bundle %q (%s) on %s\n", b.Reason, b.ConfigHash, *addr)
		return http.ListenAndServe(*addr, h)
	})
}

// newServeHandler exposes a loaded bundle with the platform's live
// observability surface: the bundle's metric snapshot on /metrics and
// /metrics.json, its DLT on /dlt (with ?follow=1 fed by the returned
// replay pump), the raw bundle on /bundle and the summary on /summary.
func newServeHandler(b *obs.Bundle) (http.Handler, func(every time.Duration, loop bool)) {
	// The replay log mirrors the bundle's ring: same capacity, fed
	// record by record so followers watch the black box play back.
	capacity := len(b.Flight.DLT)
	if capacity == 0 {
		capacity = 1
	}
	replayLog := obs.NewBoundedLog(obs.LevelVerbose, capacity)
	inner := obs.NewServeHandler(obs.ServeOptions{
		DLT:    replayLog,
		Bundle: func(string) *obs.Bundle { return b },
	})
	mux := http.NewServeMux()
	mux.Handle("/dlt", inner)
	mux.Handle("/bundle", inner)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, b.Metrics)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteJSON(w, b.Metrics)
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = b.WriteSummary(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "autodiag bundle %q\n/metrics /metrics.json /dlt /dlt?follow=1 /bundle /summary\n", b.Reason)
	})
	replay := func(every time.Duration, loop bool) {
		for {
			for _, rec := range b.Flight.DLT {
				replayLog.Emit(rec.At, rec.Level, rec.App, rec.Ctx, rec.Msg)
				time.Sleep(every)
			}
			if !loop {
				return
			}
		}
	}
	return mux, replay
}
