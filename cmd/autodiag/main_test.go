package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"autorte/internal/experiments"
	"autorte/internal/obs"
)

// writeSafeStopBundles runs the E11 permanent-fault scenario once and
// serializes the first severe-escalation bundle and the terminal
// safe-stop bundle for the CLI to chew on.
func writeSafeStopBundles(t *testing.T) (first, last string, bundles []*obs.Bundle) {
	t.Helper()
	dir := t.TempDir()
	last = filepath.Join(dir, "safestop.bundle")
	bundles, err := experiments.E11SafeStopBundle(experiments.DefaultE11(), last)
	if err != nil {
		t.Fatal(err)
	}
	first = filepath.Join(dir, "first.bundle")
	if err := bundles[0].WriteFile(first); err != nil {
		t.Fatal(err)
	}
	return first, last, bundles
}

// TestEndToEndSafeStopBundle is the acceptance path: a forced safe-stop
// in E11 produces a bundle whose escalation ladder, final degradation
// level and last DLT records are all visible through autodiag.
func TestEndToEndSafeStopBundle(t *testing.T) {
	first, last, bundles := writeSafeStopBundles(t)

	var out strings.Builder
	if err := run(&out, "summary", []string{last}); err != nil {
		t.Fatal(err)
	}
	sum := out.String()
	if !strings.Contains(sum, "safe-stop:Sensor") {
		t.Fatalf("summary misses the safe-stop reason:\n%s", sum)
	}
	if !strings.Contains(sum, bundles[len(bundles)-1].ConfigHash) {
		t.Fatalf("summary misses the config hash:\n%s", sum)
	}

	// The DLT tail records the ladder walk: filter the health context.
	out.Reset()
	if err := run(&out, "dlt", []string{"-app", "HLTH", last}); err != nil {
		t.Fatal(err)
	}
	dlt := out.String()
	for _, rung := range []string{"restart-runnable", "restart-partition", "ecu-reset"} {
		if !strings.Contains(dlt, "rung "+rung) {
			t.Fatalf("DLT misses escalation rung %s:\n%s", rung, dlt)
		}
	}
	if !strings.Contains(dlt, "safe-stopped") && !strings.Contains(dlt, "-> safe-stop") {
		t.Fatalf("DLT misses the terminal stop:\n%s", dlt)
	}
	// -grep narrows to the degradation transitions only.
	out.Reset()
	if err := run(&out, "dlt", []string{"-grep", "degradation .* ->", last}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-> safe-stop") {
		t.Fatalf("grep lost the final degradation:\n%s", out.String())
	}

	// The metric snapshot pins the final degradation level at 3.
	out.Reset()
	if err := run(&out, "metrics", []string{"-grep", "health_degradation_level", last}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "health_degradation_level 3") {
		t.Fatalf("final degradation level not 3:\n%s", out.String())
	}

	// The sampled series shows the walk 0 -> 3 over virtual time.
	out.Reset()
	if err := run(&out, "series", []string{"-grep", "health_degradation_level", last}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "health_degradation_level") {
		t.Fatalf("series output:\n%s", out.String())
	}

	// diff against the first severe bundle shows the ladder progressed.
	out.Reset()
	if err := run(&out, "diff", []string{first, last}); err != nil {
		t.Fatal(err)
	}
	diff := out.String()
	if !strings.Contains(diff, "health_escalations_total") {
		t.Fatalf("diff misses escalation progress:\n%s", diff)
	}

	// chrome export is valid trace JSON with events.
	out.Reset()
	if err := run(&out, "chrome", []string{last}); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &trace); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" || len(trace.TraceEvents) == 0 {
		t.Fatalf("chrome export empty: %d events", len(trace.TraceEvents))
	}

	// spans lists the flight recorder's lanes.
	out.Reset()
	if err := run(&out, "spans", []string{last}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "span events retained") {
		t.Fatalf("spans output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "summary", []string{}); err == nil {
		t.Fatal("summary without a bundle path did not fail")
	}
	if err := run(&out, "nope", nil); err == nil {
		t.Fatal("unknown command did not fail")
	}
	if err := run(&out, "diff", []string{"only-one"}); err == nil {
		t.Fatal("diff with one path did not fail")
	}
	if err := run(&out, "dlt", []string{"-min", "bogus", "/dev/null"}); err == nil {
		t.Fatal("bogus level did not fail")
	}
}

// promLine matches one Prometheus exposition line: comment or sample.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$`)

// TestServeScrapeAndLiveTail: the serve handler's /metrics parses as
// Prometheus text and a follower on /dlt?follow=1 receives records
// emitted (replayed) after it connected.
func TestServeScrapeAndLiveTail(t *testing.T) {
	_, last, _ := writeSafeStopBundles(t)
	b, err := obs.ReadBundleFile(last)
	if err != nil {
		t.Fatal(err)
	}
	h, replay := newServeHandler(b)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Scrape: every line must be spec-shaped, and the snapshot's final
	// degradation level must be present.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines, sawDeg := 0, false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines++
		if !promLine.MatchString(line) {
			t.Fatalf("invalid Prometheus line: %q", line)
		}
		if line == "health_degradation_level 3" {
			sawDeg = true
		}
	}
	resp.Body.Close()
	if lines < 10 || !sawDeg {
		t.Fatalf("scrape has %d lines, degradation present = %v", lines, sawDeg)
	}

	// Live tail: connect FIRST, then start the replay pump; every record
	// the follower sees was emitted after it connected.
	follow, err := srv.Client().Get(srv.URL + "/dlt?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer follow.Body.Close()
	go replay(time.Millisecond, false)
	fsc := bufio.NewScanner(follow.Body)
	deadline := time.After(10 * time.Second)
	got := make(chan string, 1)
	go func() {
		if fsc.Scan() {
			got <- fsc.Text()
		}
	}()
	select {
	case line := <-got:
		var rec struct {
			Level string `json:"level"`
			Msg   string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("tail line not JSON: %q (%v)", line, err)
		}
		if rec.Msg == "" || rec.Level == "" {
			t.Fatalf("tail record incomplete: %q", line)
		}
	case <-deadline:
		t.Fatal("no tailed record within 10s of starting the replay")
	}

	// Bundle download round-trips.
	bd, err := srv.Client().Get(srv.URL + "/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer bd.Body.Close()
	back, err := obs.ReadBundle(bd.Body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != b.Reason || back.ConfigHash != b.ConfigHash {
		t.Fatal("served bundle does not match the loaded one")
	}

	// Summary endpoint renders.
	sm, err := srv.Client().Get(srv.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Body.Close()
	body, err := io.ReadAll(sm.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "safe-stop:Sensor") {
		t.Fatalf("summary endpoint output:\n%s", body)
	}
}
