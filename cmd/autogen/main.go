// Command autogen synthesizes time-triggered communication schedules: it
// reads a deployed system description, collects the periodic signals each
// FlexRay bus must carry, and prints the static-segment slot assignment
// (slot, base cycle, repetition, worst-case latency) that the RTE would
// generate — the planning step time-triggered design requires (§1).
//
// Usage:
//
//	autogen -system vehicle.json [-slots 8] [-slotlen 100us] [-minislots 40]
//	autogen -demo
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/vfb"
	"autorte/internal/workload"
)

func main() {
	var (
		systemPath = flag.String("system", "", "system JSON (exchange format)")
		demo       = flag.Bool("demo", false, "use the generated demo vehicle (its backbone treated as FlexRay)")
		seed       = flag.Uint64("seed", 1, "workload generator seed (with -demo)")
		slots      = flag.Int("slots", 8, "static slots per cycle")
		slotLen    = flag.Duration("slotlen", 100*time.Microsecond, "static slot length")
		minislots  = flag.Int("minislots", 40, "dynamic segment minislots")
		miniLen    = flag.Duration("minilen", 5*time.Microsecond, "minislot length")
		nit        = flag.Duration("nit", 100*time.Microsecond, "network idle time")
	)
	flag.Parse()

	var sys *model.System
	var err error
	if *demo {
		sys, err = workload.GenerateVehicle(workload.VehicleSpec{BusKind: model.BusFlexRay}, sim.NewRand(*seed))
	} else if *systemPath != "" {
		var f *os.File
		if f, err = os.Open(*systemPath); err == nil {
			defer f.Close()
			sys, err = model.Import(f)
		}
	} else {
		err = fmt.Errorf("need -system file or -demo")
	}
	if err != nil {
		fatal(err)
	}

	cfg := flexray.Config{
		StaticSlots: *slots, SlotLength: sim.Duration(*slotLen),
		Minislots: *minislots, MinislotLength: sim.Duration(*miniLen),
		NIT: sim.Duration(*nit),
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	routes, err := vfb.Resolve(sys)
	if err != nil {
		fatal(err)
	}
	byBus := vfb.ByBus(routes)
	fmt.Printf("communication cycle: %v (static %v, dynamic %v, NIT %v)\n\n",
		cfg.CycleLength(), cfg.DynamicStart(),
		sim.Duration(cfg.Minislots)*cfg.MinislotLength, cfg.NIT)
	synthesized := false
	for _, bus := range sys.Buses {
		if bus.Kind != model.BusFlexRay {
			continue
		}
		var sigs []flexray.Signal
		for _, r := range byBus[bus.Name] {
			if r.Period > 0 {
				sigs = append(sigs, flexray.Signal{Name: r.SignalName, Period: sim.Duration(r.Period)})
			}
		}
		if len(sigs) == 0 {
			continue
		}
		synthesized = true
		as, err := flexray.Synthesize(cfg, sigs)
		if err != nil {
			fmt.Printf("bus %s: SYNTHESIS FAILED: %v\n", bus.Name, err)
			os.Exit(3)
		}
		fmt.Printf("bus %s: %d signals placed\n", bus.Name, len(as))
		fmt.Printf("  %-60s %-5s %-5s %-4s %s\n", "signal", "slot", "base", "rep", "WCRT")
		for _, a := range as {
			fmt.Printf("  %-60s %-5d %-5d %-4d %v\n", a.Signal.Name, a.SlotID, a.Base, a.Repetition, a.WCRT)
		}
	}
	if !synthesized {
		fmt.Println("no FlexRay buses with periodic signals found")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autogen:", err)
	os.Exit(1)
}
