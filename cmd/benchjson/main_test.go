package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkVerify-8   \t120\t  9536271 ns/op\t  212 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if name != "BenchmarkVerify" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if r.Iterations != 120 || r.NsPerOp != 9536271 || r.BytesPerOp != 212 || r.AllocsPerOp != 3 {
		t.Fatalf("result = %+v", r)
	}
}

func TestParseBenchLineWithoutMem(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkDSEDescend-16 52 22801933 ns/op")
	if !ok || name != "BenchmarkDSEDescend" || r.NsPerOp != 22801933 {
		t.Fatalf("ok=%v name=%q r=%+v", ok, name, r)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	in := strings.NewReader("goos: linux\nPASS\nok  \tautorte\t0.01s\n")
	var echoed strings.Builder
	n, err := run(in, &echoed, out)
	if err == nil {
		t.Fatalf("run succeeded (%d results) on input with no benchmark lines", n)
	}
	if !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("error %q does not explain the empty input", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("output file was written despite the error (stat: %v)", statErr)
	}
	if !strings.Contains(echoed.String(), "PASS") {
		t.Fatalf("input was not echoed through: %q", echoed.String())
	}
}

func TestRunWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	in := strings.NewReader("BenchmarkVerify-8 120 9536271 ns/op\n")
	n, err := run(in, &strings.Builder{}, out)
	if err != nil || n != 1 {
		t.Fatalf("run = %d, %v; want 1 benchmark", n, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"BenchmarkVerify\"") {
		t.Fatalf("artifact missing benchmark: %s", data)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tautorte\t12.3s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q wrongly parsed as a benchmark", line)
		}
	}
}
