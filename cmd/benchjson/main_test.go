package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkVerify-8   \t120\t  9536271 ns/op\t  212 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if name != "BenchmarkVerify" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if r.Iterations != 120 || r.NsPerOp != 9536271 || r.BytesPerOp != 212 || r.AllocsPerOp != 3 {
		t.Fatalf("result = %+v", r)
	}
}

func TestParseBenchLineCustomMetrics(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkPlatformFlight-8 120 2170000 ns/op 1.015 on/off-ratio 212 B/op 3 allocs/op")
	if !ok || name != "BenchmarkPlatformFlight" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if r.Metrics["on/off-ratio"] != 1.015 {
		t.Fatalf("metrics = %v, want on/off-ratio 1.015", r.Metrics)
	}
	if r.NsPerOp != 2170000 || r.BytesPerOp != 212 || r.AllocsPerOp != 3 {
		t.Fatalf("standard columns lost around custom metric: %+v", r)
	}
}

func TestParseBenchLineWithoutMem(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkDSEDescend-16 52 22801933 ns/op")
	if !ok || name != "BenchmarkDSEDescend" || r.NsPerOp != 22801933 {
		t.Fatalf("ok=%v name=%q r=%+v", ok, name, r)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	in := strings.NewReader("goos: linux\nPASS\nok  \tautorte\t0.01s\n")
	var echoed strings.Builder
	n, err := run(in, &echoed, out)
	if err == nil {
		t.Fatalf("run succeeded (%d results) on input with no benchmark lines", n)
	}
	if !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("error %q does not explain the empty input", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("output file was written despite the error (stat: %v)", statErr)
	}
	if !strings.Contains(echoed.String(), "PASS") {
		t.Fatalf("input was not echoed through: %q", echoed.String())
	}
}

func TestRunWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	in := strings.NewReader("BenchmarkVerify-8 120 9536271 ns/op\n")
	n, err := run(in, &strings.Builder{}, out)
	if err != nil || n != 1 {
		t.Fatalf("run = %d, %v; want 1 benchmark", n, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"BenchmarkVerify\"") {
		t.Fatalf("artifact missing benchmark: %s", data)
	}
}

func TestRunKeepsFastestRepeat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	in := strings.NewReader(
		"BenchmarkVerify-8 120 9536271 ns/op\n" +
			"BenchmarkVerify-8 130 8100000 ns/op\n" +
			"BenchmarkVerify-8 110 9900000 ns/op\n")
	n, err := run(in, &strings.Builder{}, out)
	if err != nil || n != 1 {
		t.Fatalf("run = %d, %v; want 1 deduplicated benchmark", n, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "8100000") || strings.Contains(string(data), "9900000") {
		t.Fatalf("artifact did not keep the fastest -count repeat: %s", data)
	}
}

func TestMergeRepeatTakesMetricMin(t *testing.T) {
	a := Result{NsPerOp: 9000000, Metrics: map[string]float64{"on/off-ratio": 1.012}}
	b := Result{NsPerOp: 8000000, Metrics: map[string]float64{"on/off-ratio": 1.041, "events/op": 42}}
	got := mergeRepeat(a, b)
	if got.NsPerOp != 8000000 {
		t.Fatalf("ns/op = %v, want the faster repeat kept whole", got.NsPerOp)
	}
	if got.Metrics["on/off-ratio"] != 1.012 {
		t.Fatalf("ratio = %v, want per-metric minimum across repeats", got.Metrics["on/off-ratio"])
	}
	if got.Metrics["events/op"] != 42 {
		t.Fatalf("metric present in only one repeat lost: %v", got.Metrics)
	}
	if a.Metrics["on/off-ratio"] != 1.012 || b.Metrics["on/off-ratio"] != 1.041 {
		t.Fatal("merge mutated its inputs")
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tautorte\t12.3s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q wrongly parsed as a benchmark", line)
		}
	}
}
