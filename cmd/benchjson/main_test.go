package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkVerify-8   \t120\t  9536271 ns/op\t  212 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if name != "BenchmarkVerify" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if r.Iterations != 120 || r.NsPerOp != 9536271 || r.BytesPerOp != 212 || r.AllocsPerOp != 3 {
		t.Fatalf("result = %+v", r)
	}
}

func TestParseBenchLineWithoutMem(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkDSEDescend-16 52 22801933 ns/op")
	if !ok || name != "BenchmarkDSEDescend" || r.NsPerOp != 22801933 {
		t.Fatalf("ok=%v name=%q r=%+v", ok, name, r)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tautorte\t12.3s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q wrongly parsed as a benchmark", line)
		}
	}
}
