// Command benchjson converts `go test -bench` output into a JSON
// artifact. It reads benchmark output on stdin, echoes it unchanged to
// stdout (so piping through it costs nothing), and writes a map of
// benchmark name → {ns_per_op, allocs_per_op, bytes_per_op, iterations}
// to the file named by -o. `make bench` pipes through it to produce
// BENCH_pipeline.json for tracking pipeline performance across commits.
//
// Usage:
//
//	go test -bench . -benchmem . | benchjson -o BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result holds one parsed benchmark line. Metrics carries any custom
// b.ReportMetric values (e.g. "on/off-ratio", "events/op") beyond the
// three standard columns.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output JSON file")
	flag.Parse()
	n, err := run(os.Stdin, os.Stdout, *out)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", n, *out)
}

// run echoes in to stdout, parses benchmark lines, and writes the JSON
// artifact to out. Input containing no benchmark lines is an error — an
// empty artifact would silently satisfy downstream tracking while the
// benchmarks never ran (a mistyped -bench pattern, a build failure
// swallowed by the pipe) — and the output file is left unwritten so a
// previous good artifact is not clobbered.
func run(in io.Reader, stdout io.Writer, out string) (int, error) {
	results := map[string]Result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		if name, r, ok := parseBenchLine(line); ok {
			// With `go test -count=N` the same benchmark repeats; keep the
			// fastest run. The minimum is the noise-robust statistic — any
			// slowdown in it is real work, not scheduler or GC interference
			// — which tight budget gates (benchguard -flightratio) need.
			// Custom metrics take the elementwise minimum across repeats for
			// the same reason: each repeat is an independent estimate and
			// interference only inflates it.
			if prev, seen := results[name]; seen {
				results[name] = mergeRepeat(prev, r)
			} else {
				results[name] = r
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if len(results) == 0 {
		return 0, fmt.Errorf("no benchmark lines in input: nothing matched the `BenchmarkName N ... ns/op` shape (did the -bench pattern select anything?); not writing %s", out)
	}
	f, err := os.Create(out)
	if err != nil {
		return 0, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(results)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return len(results), nil
}

// mergeRepeat combines two -count repeats of the same benchmark: the
// faster repeat's standard columns win whole, and each custom metric
// takes its minimum across both (a repeat may lack a metric entirely —
// the other's value then stands).
func mergeRepeat(a, b Result) Result {
	keep, other := a, b
	if b.NsPerOp < a.NsPerOp {
		keep, other = b, a
	}
	if len(other.Metrics) > 0 {
		merged := make(map[string]float64, len(keep.Metrics)+len(other.Metrics))
		for k, v := range keep.Metrics {
			merged[k] = v
		}
		for k, v := range other.Metrics {
			if cur, ok := merged[k]; !ok || v < cur {
				merged[k] = v
			}
		}
		keep.Metrics = merged
	}
	return keep
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkVerify-8   120  9536271 ns/op  212 B/op  3 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name so artifacts
// compare across machines.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, ok = v, true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return name, r, ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
