// Command autocheck statically verifies a deployed system description:
// model validity, VFB connectivity, fixed-priority schedulability on every
// ECU, bus schedulability per channel, and end-to-end latency constraints
// — the "prior to implementation system configuration checks" of §2.
//
// Exit status: 0 verified, 3 verification failed, 1 error.
//
// Usage:
//
//	autocheck -system vehicle.json [-v] [-j N]
//	autocheck -demo
//
// Verification fans out per ECU, bus and constraint chain on a bounded
// worker pool; -j caps the workers (default 0 = GOMAXPROCS). The report
// is identical for every worker count.
//
// Observability artifacts: -metrics dumps the pipeline's metric registry
// in Prometheus text format (cache hits, pool occupancy, per-stage
// duration histograms); -trace-out writes the stage spans as Chrome
// trace-event JSON loadable in Perfetto; -trace-txt renders the same
// spans as an indented text tree.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autorte/internal/contract"
	"autorte/internal/core"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func main() {
	var (
		systemPath    = flag.String("system", "", "system JSON (exchange format)")
		contractsPath = flag.String("contracts", "", "contract catalogue JSON (optional)")
		demo          = flag.Bool("demo", false, "verify the generated demo vehicle")
		seed          = flag.Uint64("seed", 1, "workload generator seed (with -demo)")
		verbose       = flag.Bool("v", false, "print per-task response times and cache stats")
		jobs          = flag.Int("j", 0, "verification workers (0 = GOMAXPROCS)")
		metricsPath   = flag.String("metrics", "", "write pipeline metrics (Prometheus text format) to file")
		traceOutPath  = flag.String("trace-out", "", "write pipeline stage spans as Chrome trace JSON to file")
		traceTxtPath  = flag.String("trace-txt", "", "write pipeline stage spans as a text tree to file")
		bundlePath    = flag.String("bundle", "", "write a diagnostic bundle of the verification run (inspect with autodiag)")
	)
	flag.Parse()

	var sys *model.System
	var err error
	if *demo {
		sys, err = workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(*seed))
	} else if *systemPath != "" {
		var f *os.File
		if f, err = os.Open(*systemPath); err == nil {
			defer f.Close()
			sys, err = model.Import(f)
		}
	} else {
		err = fmt.Errorf("need -system file or -demo")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autocheck:", err)
		os.Exit(1)
	}

	var contracts map[string]*contract.Contract
	if *contractsPath != "" {
		f, err := os.Open(*contractsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autocheck:", err)
			os.Exit(1)
		}
		contracts, err = contract.Import(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "autocheck:", err)
			os.Exit(1)
		}
	}

	pipe := core.NewPipeline(*jobs)
	var reg *obs.Registry
	if *metricsPath != "" || *bundlePath != "" {
		reg = obs.NewRegistry()
		pipe.Observe(reg)
	}
	if *traceOutPath != "" || *traceTxtPath != "" || *bundlePath != "" {
		pipe.Tracer = obs.NewTracer()
	}
	rep, err := pipe.Verify(sys, contracts, rte.Options{})
	// Artifacts are written even when verification fails below: the
	// metrics and spans of a failed run are exactly what gets debugged.
	writeArtifact(*metricsPath, func(w io.Writer) error {
		return obs.WritePrometheus(w, reg.Snapshot())
	})
	writeArtifact(*traceOutPath, pipe.Tracer.WriteChrome)
	writeArtifact(*traceTxtPath, pipe.Tracer.WriteTree)
	writeArtifact(*bundlePath, func(w io.Writer) error {
		b := &obs.Bundle{
			Version: obs.BundleVersion, Reason: "autocheck:verify",
			ConfigHash: sys.Hash(),
			Meta: map[string]string{
				"system": sys.Name,
				"ok":     fmt.Sprint(err == nil && rep != nil && rep.OK()),
			},
			Metrics: reg.Snapshot(),
		}
		b.Flight.Spans = pipe.Tracer.SpanEvents()
		b.Flight.SpanTotal = uint64(len(b.Flight.Spans))
		return b.Write(w)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autocheck:", err)
		os.Exit(1)
	}
	if rep.Contracts != nil {
		fmt.Printf("contracts: %d connections checked, %d skipped, confidence %.2f\n",
			rep.Contracts.Checked, rep.Contracts.Skipped, rep.Contracts.Confidence)
		for _, v := range rep.Contracts.Violations {
			fmt.Println("  VIOLATION:", v)
		}
	}
	for _, e := range rep.ECUs {
		status := "OK"
		if !e.Schedulable {
			status = "UNSCHEDULABLE"
		}
		fmt.Printf("ECU %-22s util %.3f  %s\n", e.Name, e.Utilization, status)
		if *verbose {
			for _, r := range e.Results {
				fmt.Printf("    %-42s C=%-8v T=%-8v R=%v\n", r.Task.Name, r.Task.C, r.Task.T, r.WCRT)
			}
		}
	}
	for _, b := range rep.Buses {
		status := "OK"
		if !b.Schedulable {
			status = "UNSCHEDULABLE: " + b.Detail
		}
		fmt.Printf("bus %-22s %-8v load %.3f  %s\n", b.Name, b.Kind, b.Load, status)
	}
	for _, c := range rep.Chains {
		switch {
		case c.Err != "":
			fmt.Printf("chain %-20s ERROR: %s\n", c.Name, c.Err)
		case c.OK:
			fmt.Printf("chain %-20s bound %v <= budget %v  OK\n", c.Name, c.Bound, c.Budget)
		default:
			fmt.Printf("chain %-20s bound %v >  budget %v  VIOLATED\n", c.Name, c.Bound, c.Budget)
		}
	}
	for _, w := range rep.Warnings {
		fmt.Println("warning:", w)
	}
	if *verbose {
		h, m := pipe.RTA.Stats()
		fmt.Printf("rta cache: %d hits / %d misses\n", h, m)
	}
	if !rep.OK() {
		fmt.Println("\nVERIFICATION FAILED")
		os.Exit(3)
	}
	fmt.Println("\nverified: system is admissible")
}

// writeArtifact creates path and fills it with write. An empty path is a
// no-op; a failed write is fatal — a truncated artifact that looks valid
// is worse than an error.
func writeArtifact(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autocheck:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
