// Command autocheck statically verifies a deployed system description:
// model validity, VFB connectivity, fixed-priority schedulability on every
// ECU, bus schedulability per channel, and end-to-end latency constraints
// — the "prior to implementation system configuration checks" of §2.
//
// Exit status: 0 verified, 3 verification failed, 1 error.
//
// Usage:
//
//	autocheck -system vehicle.json [-v] [-j N]
//	autocheck -demo
//
// Verification fans out per ECU, bus and constraint chain on a bounded
// worker pool; -j caps the workers (default 0 = GOMAXPROCS). The report
// is identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"autorte/internal/contract"
	"autorte/internal/core"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func main() {
	var (
		systemPath    = flag.String("system", "", "system JSON (exchange format)")
		contractsPath = flag.String("contracts", "", "contract catalogue JSON (optional)")
		demo          = flag.Bool("demo", false, "verify the generated demo vehicle")
		seed          = flag.Uint64("seed", 1, "workload generator seed (with -demo)")
		verbose       = flag.Bool("v", false, "print per-task response times and cache stats")
		jobs          = flag.Int("j", 0, "verification workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var sys *model.System
	var err error
	if *demo {
		sys, err = workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(*seed))
	} else if *systemPath != "" {
		var f *os.File
		if f, err = os.Open(*systemPath); err == nil {
			defer f.Close()
			sys, err = model.Import(f)
		}
	} else {
		err = fmt.Errorf("need -system file or -demo")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autocheck:", err)
		os.Exit(1)
	}

	var contracts map[string]*contract.Contract
	if *contractsPath != "" {
		f, err := os.Open(*contractsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autocheck:", err)
			os.Exit(1)
		}
		contracts, err = contract.Import(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "autocheck:", err)
			os.Exit(1)
		}
	}

	pipe := core.NewPipeline(*jobs)
	rep, err := pipe.Verify(sys, contracts, rte.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autocheck:", err)
		os.Exit(1)
	}
	if rep.Contracts != nil {
		fmt.Printf("contracts: %d connections checked, %d skipped, confidence %.2f\n",
			rep.Contracts.Checked, rep.Contracts.Skipped, rep.Contracts.Confidence)
		for _, v := range rep.Contracts.Violations {
			fmt.Println("  VIOLATION:", v)
		}
	}
	for _, e := range rep.ECUs {
		status := "OK"
		if !e.Schedulable {
			status = "UNSCHEDULABLE"
		}
		fmt.Printf("ECU %-22s util %.3f  %s\n", e.Name, e.Utilization, status)
		if *verbose {
			for _, r := range e.Results {
				fmt.Printf("    %-42s C=%-8v T=%-8v R=%v\n", r.Task.Name, r.Task.C, r.Task.T, r.WCRT)
			}
		}
	}
	for _, b := range rep.Buses {
		status := "OK"
		if !b.Schedulable {
			status = "UNSCHEDULABLE: " + b.Detail
		}
		fmt.Printf("bus %-22s %-8v load %.3f  %s\n", b.Name, b.Kind, b.Load, status)
	}
	for _, c := range rep.Chains {
		switch {
		case c.Err != "":
			fmt.Printf("chain %-20s ERROR: %s\n", c.Name, c.Err)
		case c.OK:
			fmt.Printf("chain %-20s bound %v <= budget %v  OK\n", c.Name, c.Bound, c.Budget)
		default:
			fmt.Printf("chain %-20s bound %v >  budget %v  VIOLATED\n", c.Name, c.Bound, c.Budget)
		}
	}
	for _, w := range rep.Warnings {
		fmt.Println("warning:", w)
	}
	if *verbose {
		h, m := pipe.RTA.Stats()
		fmt.Printf("rta cache: %d hits / %d misses\n", h, m)
	}
	if !rep.OK() {
		fmt.Println("\nVERIFICATION FAILED")
		os.Exit(3)
	}
	fmt.Println("\nverified: system is admissible")
}
