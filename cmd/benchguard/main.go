// Command benchguard enforces the verification pipeline's performance
// budget against a BENCH_pipeline.json artifact (produced by benchjson)
// and prints a benchstat-style old-vs-new comparison when a baseline is
// supplied. `make bench` runs it after regenerating the artifact, and CI
// compares the fresh artifact against the committed baseline so perf
// regressions surface in the PR, not three PRs later.
//
// The guarded invariants are the ones PR 6 restored and must not regress:
//
//   - BenchmarkVerify/<size>/par must not be slower than .../seq — the
//     cached-parallel path exists only because it wins; a par-slower-
//     than-seq run means the per-pass sharing broke again.
//   - BenchmarkVerify/large-*/{seq,par} allocs/op must stay under the
//     budget (default 1690, half the 3380 the seed shipped with).
//   - BenchmarkVerifyDSESweepInc/<size>/inc must be at least -incratio
//     (default 3.0) times faster than BenchmarkVerifyDSESweep/<size>/par.
//   - BenchmarkE13Availability's "par/seq-ratio" metric (the
//     fail-operational availability campaign fanned out across
//     GOMAXPROCS workers, paired against the single-worker run) must
//     stay at or under -e13ratio (default 1.15): on multicore the
//     fan-out must win outright, and even on a one-CPU host — where
//     both arms degenerate to one worker — the parallel dispatch must
//     remain overhead, not a tax.
//   - Every benchmark reporting an "on/off-ratio" metric (the paired
//     Benchmark*Flight comparisons): the always-on flight recorder must
//     cost at most -flightratio (default 1.05, i.e. 5%) over the
//     recorder-off baseline — the observability budget. (Rebased from 3%
//     when replica fan-in cell sharing cut the campaign's base time ~25%:
//     the recorder's absolute per-event cost did not change, but a faster
//     denominator raises the relative ratio.)
//
// A guard that finds no benchmarks to check fails: a vacuous pass from a
// mistyped -bench pattern must not look green.
//
// Usage:
//
//	benchguard -bench BENCH_pipeline.json [-old baseline.json] \
//	           [-allocs 1690] [-incratio 3.0] [-flightratio 1.05] \
//	           [-e13ratio 1.15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Result mirrors benchjson's per-benchmark record.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

func main() {
	bench := flag.String("bench", "BENCH_pipeline.json", "benchmark artifact to guard")
	old := flag.String("old", "", "optional baseline artifact for the comparison table")
	allocs := flag.Int64("allocs", 1690, "allocs/op ceiling for BenchmarkVerify/large")
	incRatio := flag.Float64("incratio", 3.0, "minimum DSE sweep speedup of the incremental path over cached-par")
	flightRatio := flag.Float64("flightratio", 1.05, "maximum flight-recorder on/off ns/op ratio (observability budget)")
	e13Ratio := flag.Float64("e13ratio", 1.15, "maximum E13 availability-campaign par/seq ns/op ratio")
	flag.Parse()
	cur, err := load(*bench)
	if err != nil {
		fatal(err)
	}
	if *old != "" {
		base, err := load(*old)
		if err != nil {
			fatal(err)
		}
		compare(os.Stdout, base, cur)
	}
	violations := guard(cur, *allocs, *incRatio, *flightRatio, *e13Ratio)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d violation(s) in %s:\n", len(violations), *bench)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchguard: %s within budget\n", *bench)
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// guard checks the budget invariants and returns the violations found.
func guard(cur map[string]Result, allocCeiling int64, incRatio, flightRatio, e13Ratio float64) []string {
	var out []string
	pairs := 0
	for name, seq := range cur {
		size, ok := verifySize(name, "/seq")
		if !ok {
			continue
		}
		pairs++
		par, okPar := cur["BenchmarkVerify/"+size+"/par"]
		if !okPar {
			out = append(out, fmt.Sprintf("BenchmarkVerify/%s has seq but no par run", size))
			continue
		}
		if par.NsPerOp > seq.NsPerOp {
			out = append(out, fmt.Sprintf("BenchmarkVerify/%s: par %.0f ns/op slower than seq %.0f ns/op", size, par.NsPerOp, seq.NsPerOp))
		}
		if strings.HasPrefix(size, "large") {
			for variant, r := range map[string]Result{"seq": seq, "par": par} {
				if r.AllocsPerOp > allocCeiling {
					out = append(out, fmt.Sprintf("BenchmarkVerify/%s/%s: %d allocs/op exceeds budget %d", size, variant, r.AllocsPerOp, allocCeiling))
				}
			}
		}
	}
	if pairs == 0 {
		out = append(out, "no BenchmarkVerify seq/par pairs found — guard would pass vacuously")
	}
	incPairs := 0
	for name, inc := range cur {
		const pfx = "BenchmarkVerifyDSESweepInc/"
		if !strings.HasPrefix(name, pfx) || !strings.HasSuffix(name, "/inc") {
			continue
		}
		size := strings.TrimSuffix(strings.TrimPrefix(name, pfx), "/inc")
		incPairs++
		par, ok := cur["BenchmarkVerifyDSESweep/"+size+"/par"]
		if !ok {
			out = append(out, fmt.Sprintf("BenchmarkVerifyDSESweepInc/%s has no cached-par sweep to compare against", size))
			continue
		}
		if inc.NsPerOp <= 0 {
			out = append(out, fmt.Sprintf("BenchmarkVerifyDSESweepInc/%s: non-positive ns/op", size))
			continue
		}
		if ratio := par.NsPerOp / inc.NsPerOp; ratio < incRatio {
			out = append(out, fmt.Sprintf("DSE sweep %s: incremental only %.2fx faster than cached-par (budget %.1fx)", size, ratio, incRatio))
		}
	}
	if incPairs == 0 {
		out = append(out, "no DSE sweep inc/par pairs found — guard would pass vacuously")
	}
	e13, okE13 := cur["BenchmarkE13Availability"]
	e13R, okRatio := e13.Metrics["par/seq-ratio"]
	switch {
	case !okE13 || !okRatio:
		out = append(out, "no BenchmarkE13Availability par/seq-ratio metric found — guard would pass vacuously")
	case e13R <= 0:
		out = append(out, "BenchmarkE13Availability: non-positive par/seq-ratio")
	case e13R > e13Ratio:
		out = append(out, fmt.Sprintf("BenchmarkE13Availability: par costs %.1f%% over seq (budget %.1f%%)",
			(e13R-1)*100, (e13Ratio-1)*100))
	}
	flightRatios := 0
	for name, r := range cur {
		ratio, ok := r.Metrics["on/off-ratio"]
		if !ok {
			continue
		}
		flightRatios++
		if ratio <= 0 {
			out = append(out, fmt.Sprintf("%s: non-positive on/off-ratio", name))
			continue
		}
		if ratio > flightRatio {
			out = append(out, fmt.Sprintf("%s: flight recorder costs %.1f%% over off (budget %.1f%%)",
				name, (ratio-1)*100, (flightRatio-1)*100))
		}
	}
	if flightRatios == 0 {
		out = append(out, "no flight-recorder on/off-ratio metrics found — guard would pass vacuously")
	}
	sort.Strings(out)
	return out
}

// verifySize extracts <size> from "BenchmarkVerify/<size><suffix>".
func verifySize(name, suffix string) (string, bool) {
	const pfx = "BenchmarkVerify/"
	if !strings.HasPrefix(name, pfx) || !strings.HasSuffix(name, suffix) {
		return "", false
	}
	return strings.TrimSuffix(strings.TrimPrefix(name, pfx), suffix), true
}

// compare prints a benchstat-style table of baseline vs current for every
// benchmark present in either artifact.
func compare(w io.Writer, old, cur map[string]Result) {
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "%-52s %14s %14s %8s %12s %12s %8s\n", "name", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, n := range sorted {
		o, hasOld := old[n]
		c, hasCur := cur[n]
		switch {
		case !hasOld:
			fmt.Fprintf(w, "%-52s %14s %14.0f %8s %12s %12d %8s\n", n, "-", c.NsPerOp, "new", "-", c.AllocsPerOp, "new")
		case !hasCur:
			fmt.Fprintf(w, "%-52s %14.0f %14s %8s %12d %12s %8s\n", n, o.NsPerOp, "-", "gone", o.AllocsPerOp, "-", "gone")
		default:
			fmt.Fprintf(w, "%-52s %14.0f %14.0f %8s %12d %12d %8s\n",
				n, o.NsPerOp, c.NsPerOp, delta(o.NsPerOp, c.NsPerOp),
				o.AllocsPerOp, c.AllocsPerOp, delta(float64(o.AllocsPerOp), float64(c.AllocsPerOp)))
		}
	}
}

func delta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
