package main

import (
	"strings"
	"testing"
)

// healthy is an artifact satisfying every budget invariant.
func healthy() map[string]Result {
	return map[string]Result{
		"BenchmarkVerify/small-13chains/seq":            {NsPerOp: 240000, AllocsPerOp: 495},
		"BenchmarkVerify/small-13chains/par":            {NsPerOp: 140000, AllocsPerOp: 471},
		"BenchmarkVerify/large-52chains/seq":            {NsPerOp: 11600000, AllocsPerOp: 1599},
		"BenchmarkVerify/large-52chains/par":            {NsPerOp: 1080000, AllocsPerOp: 1388},
		"BenchmarkVerifyDSESweep/large-52chains/par":    {NsPerOp: 2500000},
		"BenchmarkVerifyDSESweepInc/large-52chains/inc": {NsPerOp: 430000},
		"BenchmarkVerifyFlight":                         {NsPerOp: 2170000, Metrics: map[string]float64{"on/off-ratio": 1.009}},
		"BenchmarkE13Availability":                      {NsPerOp: 16000000, Metrics: map[string]float64{"par/seq-ratio": 0.41}},
	}
}

func TestGuardPassesHealthyArtifact(t *testing.T) {
	if v := guard(healthy(), 1690, 3.0, 1.03, 1.15); len(v) != 0 {
		t.Fatalf("healthy artifact flagged: %v", v)
	}
}

func TestGuardFlagsParSlowerThanSeq(t *testing.T) {
	m := healthy()
	r := m["BenchmarkVerify/small-13chains/par"]
	r.NsPerOp = 250000 // slower than seq's 240000
	m["BenchmarkVerify/small-13chains/par"] = r
	v := guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "par 250000 ns/op slower than seq") {
		t.Fatalf("want one par-slower violation, got %v", v)
	}
}

func TestGuardFlagsAllocBudget(t *testing.T) {
	m := healthy()
	r := m["BenchmarkVerify/large-52chains/par"]
	r.AllocsPerOp = 1700
	m["BenchmarkVerify/large-52chains/par"] = r
	v := guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "1700 allocs/op exceeds budget 1690") {
		t.Fatalf("want one alloc-budget violation, got %v", v)
	}
	// Only the large size is under the alloc budget; small is exempt.
	m = healthy()
	r = m["BenchmarkVerify/small-13chains/par"]
	r.AllocsPerOp = 5000
	m["BenchmarkVerify/small-13chains/par"] = r
	if v := guard(m, 1690, 3.0, 1.03, 1.15); len(v) != 0 {
		t.Fatalf("small size should be exempt from alloc budget, got %v", v)
	}
}

func TestGuardFlagsIncRatio(t *testing.T) {
	m := healthy()
	r := m["BenchmarkVerifyDSESweepInc/large-52chains/inc"]
	r.NsPerOp = 1000000 // 2.5x, under the 3x budget
	m["BenchmarkVerifyDSESweepInc/large-52chains/inc"] = r
	v := guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "incremental only 2.50x faster") {
		t.Fatalf("want one inc-ratio violation, got %v", v)
	}
}

func TestGuardFlagsFlightRatio(t *testing.T) {
	m := healthy()
	m["BenchmarkVerifyFlight"] = Result{NsPerOp: 2170000, Metrics: map[string]float64{"on/off-ratio": 1.111}}
	v := guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "flight recorder costs 11.1% over off (budget 3.0%)") {
		t.Fatalf("want one flight-ratio violation, got %v", v)
	}
}

func TestGuardFlagsE13Ratio(t *testing.T) {
	m := healthy()
	m["BenchmarkE13Availability"] = Result{NsPerOp: 16000000, Metrics: map[string]float64{"par/seq-ratio": 1.31}}
	v := guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "BenchmarkE13Availability: par costs 31.0% over seq (budget 15.0%)") {
		t.Fatalf("want one E13 ratio violation, got %v", v)
	}
}

func TestGuardFailsVacuousArtifact(t *testing.T) {
	v := guard(map[string]Result{}, 1690, 3.0, 1.03, 1.15)
	if len(v) != 4 {
		t.Fatalf("empty artifact must flag all four vacuous-pass guards, got %v", v)
	}
	for _, s := range v {
		if !strings.Contains(s, "vacuously") {
			t.Fatalf("unexpected violation %q", s)
		}
	}
}

func TestGuardFlagsMissingCounterpart(t *testing.T) {
	m := healthy()
	delete(m, "BenchmarkVerify/large-52chains/par")
	v := guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "has seq but no par run") {
		t.Fatalf("want missing-par violation, got %v", v)
	}
	m = healthy()
	delete(m, "BenchmarkVerifyDSESweep/large-52chains/par")
	v = guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "no cached-par sweep") {
		t.Fatalf("want missing-sweep violation, got %v", v)
	}
	m = healthy()
	delete(m, "BenchmarkVerifyFlight")
	v = guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "no flight-recorder on/off-ratio metrics") {
		t.Fatalf("want vacuous flight-ratio violation, got %v", v)
	}
	m = healthy()
	delete(m, "BenchmarkE13Availability")
	v = guard(m, 1690, 3.0, 1.03, 1.15)
	if len(v) != 1 || !strings.Contains(v[0], "no BenchmarkE13Availability par/seq-ratio metric") {
		t.Fatalf("want vacuous E13 violation, got %v", v)
	}
}

func TestCompareTable(t *testing.T) {
	old := map[string]Result{
		"BenchmarkVerify/large-52chains/par": {NsPerOp: 953649, AllocsPerOp: 3447},
		"BenchmarkRemoved/only-old":          {NsPerOp: 100},
	}
	cur := map[string]Result{
		"BenchmarkVerify/large-52chains/par": {NsPerOp: 1080000, AllocsPerOp: 1388},
		"BenchmarkAdded/only-new":            {NsPerOp: 200},
	}
	var sb strings.Builder
	compare(&sb, old, cur)
	out := sb.String()
	for _, want := range []string{"-59.7%", "gone", "new", "BenchmarkVerify/large-52chains/par"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + three rows
		t.Fatalf("want 4 table lines, got %d:\n%s", len(lines), out)
	}
}
