// Command autosim simulates a deployed system description (the JSON
// exchange format of internal/model) on the generated RTE platform and
// prints per-runnable response-time statistics and per-bus traffic.
//
// Usage:
//
//	autosim -system vehicle.json [-horizon 1s] [-isolation none|server|table]
//	        [-budgets] [-csv trace.csv] [-health]
//
// With -demo, autosim generates the canonical four-DAS vehicle instead of
// reading a file (useful as a smoke test and for inspecting the format:
// add -export to dump the generated system as JSON).
//
// Observability artifacts: -trace-out converts the virtual-time event
// trace to Chrome trace-event JSON (one viewer lane per task, instant
// markers for misses/aborts/drops) loadable in Perfetto; -metrics dumps
// the platform registry (kernel events, cache and pool counters) in
// Prometheus text format; -dlt enables the DLT-style structured event
// log for the run and writes it as text; -bundle serializes the whole
// run as a diagnostic bundle for autodiag, and -sample additionally
// records every metric on a virtual-time grid into the bundle's series.
//
// Reliability: -health supervises every component with the default health
// policy (error qualification, recovery escalation) and prints partition
// health after the run; -faults selects fault classes ("all" or a
// comma-separated subset such as "ecu-kill,can-burst") and runs the
// matching fault-injection campaign tables — E11 for the
// sensor/bus/overrun classes, E12 for the communication classes, E13 and
// E14 for ecu-kill — then exits. An unknown class name fails fast and prints the
// valid class list.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"autorte/internal/experiments"
	"autorte/internal/fault"
	"autorte/internal/health"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/protection"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
	"autorte/internal/workload"
)

func main() {
	var (
		systemPath = flag.String("system", "", "system JSON (exchange format)")
		horizon    = flag.Duration("horizon", time.Second, "virtual simulation horizon")
		isolation  = flag.String("isolation", "none", "timing isolation: none|server|table")
		budgets    = flag.Bool("budgets", false, "enforce per-job execution budgets")
		csvPath    = flag.String("csv", "", "write the full event trace as CSV")
		gantt      = flag.Duration("gantt", 0, "render an ASCII Gantt chart of the first <duration> of the run")
		demo       = flag.Bool("demo", false, "simulate the generated demo vehicle")
		export     = flag.Bool("export", false, "with -demo: print the system JSON and exit")
		seed       = flag.Uint64("seed", 1, "workload generator seed (with -demo)")
		traceOut   = flag.String("trace-out", "", "write the event trace as Chrome trace JSON to file")
		metricsOut = flag.String("metrics", "", "write platform metrics (Prometheus text format) to file")
		dltOut     = flag.String("dlt", "", "enable the DLT event log and write it as text to file")
		healthOn   = flag.Bool("health", false, "supervise every component with the default health policy and report partition health")
		faults     = flag.String("faults", "", "run the fault-injection campaign tables for these fault classes (\"all\" or a comma-separated subset), then exit")
		bundleOut  = flag.String("bundle", "", "write a diagnostic bundle of the run (inspect with autodiag)")
		sample     = flag.Duration("sample", 0, "sample all metrics on this virtual-time grid into the bundle's series")
	)
	flag.Parse()

	if *faults != "" {
		if err := runFaultTables(*faults); err != nil {
			fatal(err)
		}
		return
	}

	sys, err := loadSystem(*systemPath, *demo, *seed)
	if err != nil {
		fatal(err)
	}
	if *export {
		if err := model.Export(os.Stdout, sys); err != nil {
			fatal(err)
		}
		return
	}
	opts := rte.Options{EnforceBudgets: *budgets}
	switch *isolation {
	case "none":
	case "server":
		opts.Isolation = rte.ServerPerSupplier
		opts.ServerKind = protection.Deferrable
	case "table":
		opts.Isolation = rte.TablePerSupplier
	default:
		fatal(fmt.Errorf("unknown isolation %q", *isolation))
	}
	p, err := rte.Build(sys, opts)
	if err != nil {
		fatal(err)
	}
	if *dltOut != "" {
		p.EnableDLT(obs.LevelInfo)
	}
	if *sample > 0 {
		p.EnableSampling(sim.Duration(*sample), nil)
	}
	var mon *health.Monitor
	if *healthOn {
		mon = health.NewMonitor(p, health.MonitorOptions{})
		for _, c := range sys.Components {
			if len(c.Runnables) > 0 {
				mon.MustProtect(c.Name, health.Policy{})
			}
		}
	}
	p.Run(sim.Duration(*horizon))

	fmt.Printf("simulated %s of virtual time (%d events)\n\n", *horizon, p.K.Executed())
	fmt.Println("per-runnable response times:")
	var names []string
	for _, c := range sys.Components {
		for i := range c.Runnables {
			names = append(names, c.Name+"."+c.Runnables[i].Name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		st := p.Stats(n)
		if st.SampleCount == 0 {
			continue
		}
		fmt.Printf("  %-40s %s\n", n, st)
	}
	fmt.Println("\nECU utilization:")
	for _, e := range sys.ECUs {
		if cpu := p.CPU(e.Name); cpu != nil && cpu.Utilization() > 0 {
			fmt.Printf("  %-20s %.3f\n", e.Name, cpu.Utilization())
		}
	}
	for _, b := range sys.Buses {
		if cb := p.CANBus(b.Name); cb != nil {
			fmt.Printf("\nCAN bus %s: load %.3f, retransmissions %d\n", b.Name, cb.Load(), cb.Retransmissions())
		}
	}
	if n := p.Errors.Records(); len(n) > 0 {
		fmt.Printf("\nplatform errors reported: %d\n", len(n))
	}
	if mon != nil {
		fmt.Println("\npartition health:")
		for _, st := range mon.Status() {
			fmt.Printf("  %-30s %-12s rung=%-16s episodes=%d attempts=%d\n",
				st.SWC, st.State, st.Rung, st.Episodes, st.Attempts)
		}
	}
	if *gantt > 0 {
		fmt.Println("\nexecution timeline ('#' running, '!' miss, 'x' abort):")
		res := sim.Duration(*gantt) / 100
		if res < 1 {
			res = 1
		}
		if err := trace.Gantt(os.Stdout, p.Trace, nil, 0, sim.Duration(*gantt), res); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := p.Trace.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace written to %s (%d records)\n", *csvPath, len(p.Trace.Records))
	}
	writeArtifact(*traceOut, p.Trace.WriteChrome)
	writeArtifact(*metricsOut, func(w io.Writer) error {
		return obs.WritePrometheus(w, p.Metrics.Snapshot())
	})
	writeArtifact(*dltOut, p.DLT.WriteText)
	writeArtifact(*bundleOut, p.Bundle("autosim:end-of-run").Write)
	// Exit non-zero when deadlines were missed, for scripting.
	if p.Trace.Count(trace.Miss, "") > 0 {
		fmt.Printf("\nDEADLINE MISSES: %d\n", p.Trace.Count(trace.Miss, ""))
		os.Exit(3)
	}
}

// runFaultTables parses the -faults class selection and renders every
// campaign table whose swept classes intersect it: E11 for the sensor,
// bus-burst and overrun classes, E12 for the communication classes, E13
// and E14 (the fail-operational deployment studies) for ecu-kill. A mistyped class
// name fails fast here — ParseClasses' error lists every valid name —
// instead of silently sweeping nothing.
func runFaultTables(selection string) error {
	classes, err := fault.ParseClasses(selection)
	if err != nil {
		return err
	}
	selected := map[fault.FaultClass]bool{}
	for _, c := range classes {
		selected[c] = true
	}
	any := func(cs ...fault.FaultClass) bool {
		for _, c := range cs {
			if selected[c] {
				return true
			}
		}
		return false
	}
	var runs []func() (*experiments.Table, error)
	if any(fault.FaultSensorSilent, fault.FaultSensorStuck, fault.FaultSensorNoise,
		fault.FaultCANBurst, fault.FaultOverrun) {
		for _, run := range []func(experiments.E11Config) (*experiments.Table, error){
			experiments.E11FaultCampaign, experiments.E11LimpHome,
		} {
			run := run
			runs = append(runs, func() (*experiments.Table, error) { return run(experiments.DefaultE11()) })
		}
	}
	if any(fault.FaultCommCorrupt, fault.FaultCommMasquerade, fault.FaultCommDrop,
		fault.FaultCommDuplicate, fault.FaultCommDelay, fault.FaultCommResequence) {
		for _, run := range []func(experiments.E12Config) (*experiments.Table, error){
			experiments.E12DetectionCoverage, experiments.E12Overhead, experiments.E12Recovery,
		} {
			run := run
			runs = append(runs, func() (*experiments.Table, error) { return run(experiments.DefaultE12()) })
		}
	}
	if any(fault.FaultECUKill) {
		for _, run := range []func(experiments.E13Config) (*experiments.Table, error){
			experiments.E13Availability, experiments.E13Curve,
		} {
			run := run
			runs = append(runs, func() (*experiments.Table, error) { return run(experiments.DefaultE13()) })
		}
		for _, run := range []func(experiments.E14Config) (*experiments.Table, error){
			experiments.E14Observer, experiments.E14Switchover, experiments.E14Placement,
		} {
			run := run
			runs = append(runs, func() (*experiments.Table, error) { return run(experiments.DefaultE14()) })
		}
	}
	for _, run := range runs {
		tab, err := run()
		if err != nil {
			return err
		}
		tab.Render(os.Stdout)
	}
	return nil
}

func loadSystem(path string, demo bool, seed uint64) (*model.System, error) {
	if demo {
		return workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(seed))
	}
	if path == "" {
		return nil, fmt.Errorf("need -system file or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model.Import(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autosim:", err)
	os.Exit(1)
}

// writeArtifact creates path and fills it with write. An empty path is a
// no-op; a failed write is fatal — a truncated artifact that looks valid
// is worse than an error.
func writeArtifact(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
