// Package autorte is a component-based runtime and analysis toolkit for
// reliable automotive systems: a Go reproduction of "Software Components
// for Reliable Automotive Systems" (Heinecke, Damm, Josko, Metzner,
// Sangiovanni-Vincentelli, Kopetz, Di Natale — DATE 2008).
//
// The library spans the full stack the paper discusses:
//
//   - an AUTOSAR-like meta-model with SWCs, ports, runnables, configuration
//     classes and a JSON exchange format (internal/model),
//   - the Virtual Functional Bus and generated RTE (internal/vfb,
//     internal/rte) over an OSEK-like kernel (internal/osek) with timing
//     protection (internal/protection),
//   - simulated CAN, FlexRay, TTP buses and a TT/best-effort NoC with
//     worst-case analyses (internal/can, internal/flexray, internal/ttp,
//     internal/noc),
//   - contract-based rich interfaces, schedulability and end-to-end
//     latency analysis (internal/contract, internal/sched, internal/e2e),
//   - deployment design-space exploration and fault injection
//     (internal/deploy, internal/fault),
//   - the verification/composability layer tying it together
//     (internal/core) and the reproduction suite (internal/experiments).
//
// Verification and exploration are parallel and memoized: core.Pipeline
// fans per-ECU/bus/chain analyses out on a bounded worker pool
// (internal/par) with deterministic, byte-identical reports for any
// worker count, and deploy's searches score candidate mappings through
// bound evaluators backed by canonical-key analysis caches (sched.Cache,
// can.Cache, flexray.SynthCache). See the Performance sections of
// README.md and EXPERIMENTS.md.
//
// The whole stack is observable through internal/obs — a dependency-free
// metrics registry (Prometheus-text and JSON exporters), a DLT-style
// structured event log, and span tracing exportable as Chrome trace
// JSON. Caches, the worker pool, the kernel, the RTE error manager, the
// verification pipeline and the DSE searches are instrumented; autocheck
// and autosim expose the artifacts via -metrics/-trace-out/-dlt. All
// instrumentation is opt-in and nil-safe (see README "Observability").
//
// Everything timed runs on a deterministic virtual-time discrete-event
// kernel (internal/sim): the Go scheduler and garbage collector cannot
// perturb any measured latency. See DESIGN.md and EXPERIMENTS.md.
//
// Those invariants are enforced by autovet (cmd/autovet), the repo's own
// go/analysis suite (internal/analysis): walltime forbids wall-clock
// reads in the virtual-time packages, nilsafe requires nil-receiver
// guards on the opt-in observability types, baregoroutine forbids raw
// goroutines outside internal/par, kindswitch makes switches over
// platform enums exhaustive, and autovetdirective validates the
// //autovet:allow / //autovet:nilsafe directives that document the
// deliberate exceptions. Run it with "make lint" (part of "make check");
// see README "Static analysis".
package autorte
