module autorte

go 1.22
